// Router: the client half of the service tier — one object that makes a
// sharded cluster look like a single Store-shaped endpoint.
//
// Routing contract (the mirror image of meta_service.h's server half):
//   - keyed ops (Put / Delete / Point / per-shard batch slices) hash the
//     filename through the CACHED partition map and go to one shard;
//   - a kWrongShard response carries the server's current map — the router
//     installs it (if newer) and re-routes IMMEDIATELY, no backoff: the
//     redirect is information, not congestion;
//   - kUnavailable / kTimeout (transport or in-band) back off with bounded
//     exponential delay and RETRY WITH THE SAME (client_id, seq) — reusing
//     the id is what lets server dedup keep a maybe-applied mutation
//     exactly-once;
//   - attempts are bounded; exhaustion surfaces the last error.
//
// Range and top-k queries scatter to every shard and merge: shards hold
// disjoint records, so range is a concatenation (re-sorted by id for a
// canonical cross-shard answer) and top-k is a k-truncated merge globally
// re-sorted by (distance, id). Per-shard query stats are summed (latency:
// max — the scatter completes when the slowest shard answers).
//
// Snapshot scatter: Range/TopK first pin one cluster-wide cut — a
// kSnapPin round collects every shard's current commit seq under a lease
// — then scatter as-of those seqs, then release. Writers racing the
// scatter land at later seqs on every shard, so the merged answer is a
// consistent cut instead of a torn read across shards. If any shard
// cannot pin (older server, full lease table) the scatter falls back to
// unpinned latest reads. PinSnapshot()/ReleaseSnapshot() expose the same
// machinery for callers that want to run MANY queries against one cut
// (time travel, audits).
//
// Thread-safe: any number of threads may share one Router. The map cache
// sits under a reader/writer lock (rank kSvcRouter) and the shard id is
// copied out before any Call — no router lock is ever held across a
// transport call.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"
#include "smartstore/store.h"
#include "svc/partition.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::svc {

struct RouterOptions {
  /// Distinguishes this client's request ids from every other client's.
  /// Two Router instances MUST NOT share a client_id.
  std::uint64_t client_id = 1;
  /// Per-operation attempt bound (first try included). Redirect re-routes
  /// do not count against it — only unavailability/timeouts do.
  int max_attempts = 8;
  std::uint32_t backoff_init_us = 100;
  std::uint32_t backoff_max_us = 50'000;
  /// Router-wide retry budget: total retries this router may spend across
  /// ALL operations (0 = unlimited). Once exhausted, retryable failures
  /// surface immediately — a saturating brake on retry storms during an
  /// outage, so callers fail fast instead of amplifying the load.
  std::uint64_t retry_budget = 0;
};

/// Client-side accounting (monotonic; read with stats()).
struct RouterStats {
  std::uint64_t sends = 0;      ///< frames put on a channel
  std::uint64_t retries = 0;    ///< re-sends after kUnavailable/kTimeout
  std::uint64_t redirects = 0;  ///< kWrongShard re-routes
  std::uint64_t gave_up = 0;    ///< ops that exhausted attempts or budget
  std::uint64_t map_installs = 0;  ///< newer maps adopted from responses
  std::uint64_t snapshot_pins = 0;     ///< cluster-wide pin rounds completed
  std::uint64_t unpinned_scatters = 0;  ///< scatters that fell back to latest
};

/// One pinned cut across the cluster: shard k's commit seq plus the lease
/// holding it (leases[k].lease_id == 0 marks an unpinned slot). Obtain
/// with Router::PinSnapshot(), feed to the pinned Range/TopK overloads,
/// and ReleaseSnapshot() when done — an unreleased lease holds the
/// shard's GC watermark back until its server-side TTL sweeps it.
struct ClusterSnapshot {
  std::vector<rpc::SnapshotLease> leases;  ///< indexed by shard

  std::uint64_t seq_of(std::uint32_t shard) const {
    return shard < leases.size() ? leases[shard].seq : 0;
  }
};

class Router {
 public:
  /// `channels[k]` reaches NODE k (== shard k on unreplicated maps).
  /// `initial_map` seeds the cache (it may be stale or even wrong —
  /// redirects correct it); FetchMap() can replace it with the
  /// authoritative one. On replicated maps keyed ops and scatter slices
  /// route to each shard's PRIMARY node, re-resolved per attempt, so a
  /// promotion redirects traffic as soon as the new map is learned.
  Router(std::vector<std::shared_ptr<rpc::Channel>> channels,
         PartitionMap initial_map, RouterOptions options);

  // ---- keyed ops --------------------------------------------------------

  db::Status Put(const metadata::FileMetadata& file);
  db::Status Delete(const std::string& name);
  db::StatusOr<db::QueryResult> Point(const std::string& filename);

  /// Splits `ops` by owning shard and issues one BatchWrite per shard.
  /// On a redirect the remaining ops re-split under the new map.
  db::Status Write(const std::vector<rpc::BatchOp>& ops);

  // ---- scatter-gather ---------------------------------------------------

  /// Pin a cut, scatter as-of it, release. Falls back to unpinned latest
  /// reads when pinning fails (stats().unpinned_scatters counts those).
  db::StatusOr<db::QueryResult> Range(const metadata::RangeQuery& query);
  db::StatusOr<db::QueryResult> TopK(const metadata::TopKQuery& query);

  /// Scatter against an already-pinned cut (one PinSnapshot, many
  /// queries: every call sees the identical cluster state).
  db::StatusOr<db::QueryResult> Range(const metadata::RangeQuery& query,
                                      const ClusterSnapshot& snapshot);
  db::StatusOr<db::QueryResult> TopK(const metadata::TopKQuery& query,
                                     const ClusterSnapshot& snapshot);

  /// Pins every shard's current commit seq under a lease (one kSnapPin
  /// round). On any failure the already-pinned prefix is released and the
  /// error surfaces.
  db::StatusOr<ClusterSnapshot> PinSnapshot();

  /// Drops every lease in `snapshot` (best-effort: a shard that cannot be
  /// reached sweeps the lease by TTL). Returns the first error.
  db::Status ReleaseSnapshot(const ClusterSnapshot& snapshot);

  // ---- control ----------------------------------------------------------

  /// Group-commits every shard's WAL.
  db::Status Flush();

  /// Replaces the cached map with the authoritative one (asks each shard
  /// in turn until one answers).
  db::Status FetchMap();

  db::StatusOr<rpc::ShardStats> Stats(std::uint32_t shard);

  /// Liveness probe against one shard.
  db::Status Ping(std::uint32_t shard);

  PartitionMap map() const;  ///< snapshot of the cached map
  RouterStats stats() const;
  /// Logical shards under the cached map (== channel count on legacy
  /// unreplicated maps, where node k is shard k).
  std::uint32_t num_shards() const;

 private:
  /// Fresh request id (client_id fixed, seq monotonic).
  std::uint64_t NextSeq() {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The retry loop for one keyed request: route by cached map (owner
  /// shard -> primary node), send, re-route on kWrongShard, back off and
  /// resend the SAME id on kUnavailable/kTimeout (refreshing the map from
  /// surviving nodes between attempts — during a failover the dead primary
  /// cannot teach us the new map). On success `resp` holds the response.
  db::Status CallKeyed(rpc::Method method, const std::string& key,
                       std::vector<std::uint8_t> payload, rpc::Frame* resp);

  /// One un-keyed request to an explicit NODE, with the same
  /// backoff/retry loop (no redirect handling — the target is fixed).
  db::Status CallNode(std::uint32_t node, rpc::Method method,
                      std::vector<std::uint8_t> payload, rpc::Frame* resp);

  /// One request addressed to a LOGICAL shard: resolves the shard's
  /// primary node per attempt, follows kWrongShard redirects, refreshes
  /// the map on unavailability — the shard-level call that survives a
  /// failover mid-loop.
  db::Status CallShard(std::uint32_t shard, rpc::Method method,
                       std::vector<std::uint8_t> payload, rpc::Frame* resp);

  /// Best-effort map refresh: one kGetMap probe per node (direct, no
  /// retry loop) installing whatever newer map any survivor advertises.
  void TryRefreshMap();

  /// True while the router-wide retry budget allows another retry.
  bool SpendRetry();

  /// Sends one scatter query to every shard and merges canonically.
  /// `encode` builds the payload per shard (the as-of token differs).
  db::StatusOr<db::QueryResult> Scatter(
      rpc::Method method, db::QueryKind kind, std::size_t k,
      const std::function<void(std::uint32_t, std::vector<std::uint8_t>*)>&
          encode);

  /// Adopts `encoded` (a partition map payload) if newer than the cache.
  void MaybeInstallMap(const std::vector<std::uint8_t>& encoded);

  std::uint32_t ShardOf(const std::string& key) const;

  void Backoff(int attempt) const;

  const std::vector<std::shared_ptr<rpc::Channel>> channels_;
  const RouterOptions options_;

  mutable util::SharedMutex map_mu_{util::LockRank::kSvcRouter};
  PartitionMap map_ SS_GUARDED_BY(map_mu_);

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> gave_up_{0};
  std::atomic<std::uint64_t> map_installs_{0};
  std::atomic<std::uint64_t> snapshot_pins_{0};
  std::atomic<std::uint64_t> unpinned_scatters_{0};
  std::atomic<std::uint64_t> retries_spent_{0};  ///< against retry_budget
  mutable std::atomic<std::uint64_t> jitter_state_{0x9e3779b97f4a7c15ull};
};

}  // namespace smartstore::svc
