// Cluster: N shard stores, each wrapped in a MetaService and bound to an
// in-process transport endpoint — the whole deployment in one address
// space, so the oracle tests (and bench_cluster) run the REAL service
// stack under CTest, ASan, TSan, and the lock-rank validator.
//
// Topology: a LOGICAL shard s is served by `replication_factor` NODES
// (transport endpoints), node id = s * rf + replica. rf == 1 is the
// legacy layout (node k == shard k, directory `<dir>/shard-<k>`); rf == 2
// adds a warm-standby follower per shard (`<dir>/node-<n>`): the primary
// streams every committed WAL record to it (svc/replication.h) and keyed
// mutations are acked only once durable on BOTH replicas (sync mode) or
// explicitly degraded-acked (solo primary). Replication requires a
// durable cluster and forces group_commit == 1, so each mutation's ack
// barrier waits on exactly its own commit.
//
// Failover: a manager thread pings every shard's primary each heartbeat
// interval. After `heartbeat_misses` consecutive misses it promotes the
// most-caught-up READY follower — ready means the dead primary certified
// (by shipping the sync flag) that the follower's frontier covered every
// acked write, so promotion cannot lose an acked mutation. Promotion
// bumps the map's version AND epoch, installs the new map on every live
// service, and arms the winner as a (degraded, solo) primary; clients
// learn the new map from kWrongShard bounces and kGetMap probes. A
// deposed primary that tries to keep streaming is rejected by the epoch
// check and fails its own ack barrier from then on.
//
// Failure-detection assumption: in-process heartbeats cannot be wrong —
// an unbound endpoint IS a dead process. Real deployments would need
// leases/fencing to close the partitioned-alive-primary hole; here the
// epoch check on the replication stream is the fence.
//
// Crash discipline (mirrors a process dying):
//   Crash(n):  Unbind the endpoint FIRST (new calls fail kUnavailable),
//              stop the node's replication sender (waiters fail, clients
//              retry), then Abandon the store — pending WAL batches are
//              dropped un-committed, the LOCK file is released. When the
//              crashed node was a FOLLOWER, the primary's sender detaches
//              proactively (degraded solo) instead of timing out acks.
//   Restart(n): role-aware under the CURRENT map.
//              - still primary: re-Open the directory (snapshot load +
//                WAL replay), resume as a degraded primary, and re-sync a
//                live follower by wiping + re-bootstrapping it (its
//                `ready` latch predates the crash and must not survive).
//              - deposed or follower: local state may diverge from the
//                promoted timeline (unacked suffix) — wipe the directory,
//                open EMPTY, and rejoin via snapshot bootstrap from the
//                current primary. Requires that primary to be up: every
//                acked write lives on it, so the wipe loses nothing.
//
// In-flight safety: the bound handler keeps the shard node alive via
// shared_ptr, so a delivery racing a crash completes against the old node
// (whose store answers kFailedPrecondition -> kUnavailable once
// abandoned) instead of a dangling pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/inproc.h"
#include "smartstore/store.h"
#include "svc/meta_service.h"
#include "svc/partition.h"
#include "svc/replication.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::svc {

struct ClusterOptions {
  std::uint32_t num_shards = 4;
  /// Nodes per logical shard: 1 (legacy, unreplicated) or 2 (primary +
  /// follower with automatic failover). rf == 2 requires a durable
  /// cluster — followers re-log the replication stream into their WAL.
  std::uint32_t replication_factor = 1;
  /// In-memory shards: fast, but Restart recovers an EMPTY store (crash
  /// oracles need a durable cluster).
  bool in_memory = true;
  /// Root directory for durable shards (ignored when in_memory).
  std::string dir;
  /// Template for every node's store (per-node: path and seed differ;
  /// durable clusters force group_commit >= 1 so acks are durable;
  /// replicated clusters force group_commit == 1).
  db::Options store_options;
  std::uint64_t map_version = 1;
  std::size_t dedup_capacity = 4096;
  /// Ack-barrier bound on replicated shards (kTimeout past this; the
  /// client retries with the same request id).
  std::uint64_t repl_ack_timeout_ms = 2'000;
  /// Snapshot-lease table bound and TTL for every node's service: leases
  /// a crashed client (or a torn cluster pin) left behind are swept
  /// after the TTL so the GC watermark cannot stay pinned forever.
  std::size_t snapshot_lease_capacity = 64;
  std::uint64_t snapshot_lease_ttl_ms = 10'000;
  /// Failover manager (rf == 2 only): primaries are pinged every
  /// interval; this many consecutive misses triggers promotion.
  bool auto_failover = true;
  std::uint64_t heartbeat_interval_ms = 20;
  int heartbeat_misses = 2;
};

class Cluster {
 public:
  /// Opens every node store and binds every endpoint (replicated
  /// clusters also bootstrap each follower and start the failover
  /// manager). On any failure the already-started nodes are torn down.
  static db::StatusOr<std::unique_ptr<Cluster>> Start(
      const ClusterOptions& options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Simulated power cut for node n. kFailedPrecondition if already down.
  db::Status Crash(std::uint32_t node);

  /// Role-aware recovery of node n (see the header comment) + rebind.
  db::Status Restart(std::uint32_t node);

  /// Forces one failover evaluation for `shard` right now — exactly what
  /// the manager does after heartbeat loss. kFailedPrecondition when the
  /// primary is up; kUnavailable when no ready follower exists (the
  /// shard stays down-but-promotable-later).
  db::Status Promote(std::uint32_t shard);

  /// Graceful shutdown of every live node (Close, not Abandon).
  /// Idempotent; the destructor calls it.
  db::Status Stop();

  /// A client channel to node n (valid across crash/restart cycles).
  std::shared_ptr<rpc::Channel> Connect(std::uint32_t node) {
    return network_.Connect(node);
  }
  /// Channels [0, num_nodes) — the Router's constructor argument.
  std::vector<std::shared_ptr<rpc::Channel>> ConnectAll();

  PartitionMap map() const;  ///< snapshot of the current (mutable) map
  std::uint32_t num_shards() const { return options_.num_shards; }
  std::uint32_t num_nodes() const {
    return options_.num_shards * options_.replication_factor;
  }
  bool IsUp(std::uint32_t node) const;
  rpc::InprocNetwork* network() { return &network_; }

 private:
  /// One node's store + service (+ primary-role replication sender),
  /// kept alive together by the bound handler's shared_ptr.
  struct Node {
    std::unique_ptr<db::Store> store;
    std::unique_ptr<ReplicationSender> sender;  ///< primary role only
    std::unique_ptr<MetaService> service;
  };

  explicit Cluster(const ClusterOptions& options);

  std::uint32_t shard_of_node(std::uint32_t node) const {
    return node / options_.replication_factor;
  }
  db::Options NodeStoreOptions(std::uint32_t node) const;
  std::string NodePath(std::uint32_t node) const;
  db::StatusOr<std::shared_ptr<Node>> OpenNode(std::uint32_t node) const;
  void BindNode(std::uint32_t node, const std::shared_ptr<Node>& n);

  /// Gives `node` the primary role: fresh sender (degraded until a
  /// follower attaches), commit tap, ack barrier.
  db::Status ArmPrimary(const std::shared_ptr<Node>& node);

  /// One direct request to a node endpoint — no retry loop (the manager
  /// must observe failures, not paper over them).
  db::Status DirectCall(std::uint32_t node, rpc::Method method,
                        rpc::Frame* resp);

  /// The promotion decision + map install. Caller holds topo_mu_.
  db::Status PromoteLocked(std::uint32_t shard);

  /// Wipes node `f`'s on-disk state and rejoins it as an empty follower
  /// bootstrapped from `shard`'s current primary. Caller holds topo_mu_.
  db::Status WipeAndRejoinLocked(std::uint32_t f, std::uint32_t shard);

  void ManagerLoop();

  const ClusterOptions options_;
  rpc::InprocNetwork network_;

  /// Serializes every topology mutation (Crash / Restart / Promote /
  /// Stop) END TO END, including the store and replication calls inside
  /// them. DELIBERATELY a plain std::mutex outside the lock-rank system:
  /// it is held across facade calls that descend to rank 0, which the
  /// validator forbids for ranked locks. Safe because no request handler
  /// and no commit tap ever touches it — only the manager thread and
  /// external orchestration calls do.
  std::mutex topo_mu_;

  mutable util::Mutex mu_{util::LockRank::kSvcCluster};
  PartitionMap map_ SS_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Node>> nodes_ SS_GUARDED_BY(mu_);
  std::vector<char> up_ SS_GUARDED_BY(mu_);

  std::atomic<bool> manager_stop_{false};
  std::vector<int> misses_;  ///< manager-thread private, per shard
  std::thread manager_;      ///< last member: joins before the rest dies
};

}  // namespace smartstore::svc
