// Cluster: N shard stores, each wrapped in a MetaService and bound to an
// in-process transport endpoint — the whole deployment in one address
// space, so the oracle tests (and bench_cluster) run the REAL service
// stack under CTest, ASan, TSan, and the lock-rank validator.
//
// Each shard k owns an independent db::Store (directory `<dir>/shard-<k>`,
// or a private in-memory store) and serves the slice of the namespace the
// shared partition map assigns it. Durable clusters force group_commit >= 1
// on the shard stores: every acknowledged mutation is WAL-fsynced before
// the response frame leaves the shard, which is what makes the
// crash-recovery oracle ("no acked write lost") a theorem instead of a
// race.
//
// Crash discipline (mirrors a process dying):
//   Crash(k):  Unbind the endpoint FIRST (new calls fail kUnavailable),
//              then Abandon the store — pending WAL batches are dropped
//              un-committed, the LOCK file is released. Both happen with
//              NO cluster lock held: Abandon starts at lock rank 0, and
//              the validator would abort a hold-across-the-facade.
//   Restart(k): re-Open the directory (snapshot load + WAL replay), build
//              a fresh MetaService (EMPTY dedup table — the reason
//              service-level mutations are also store-level idempotent),
//              re-Bind.
//
// In-flight safety: the bound handler keeps the shard node alive via
// shared_ptr, so a delivery racing a crash completes against the old node
// (whose store answers kFailedPrecondition -> kUnavailable once
// abandoned) instead of a dangling pointer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpc/inproc.h"
#include "smartstore/store.h"
#include "svc/meta_service.h"
#include "svc/partition.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::svc {

struct ClusterOptions {
  std::uint32_t num_shards = 4;
  /// In-memory shards: fast, but Restart recovers an EMPTY store (crash
  /// oracles need a durable cluster).
  bool in_memory = true;
  /// Root directory for durable shards (ignored when in_memory).
  std::string dir;
  /// Template for every shard's store (per-shard: path and seed differ;
  /// durable clusters force group_commit >= 1 so acks are durable).
  db::Options store_options;
  std::uint64_t map_version = 1;
  std::size_t dedup_capacity = 4096;
};

class Cluster {
 public:
  /// Opens every shard store and binds every endpoint. On any failure the
  /// already-started shards are torn down.
  static db::StatusOr<std::unique_ptr<Cluster>> Start(
      const ClusterOptions& options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Simulated power cut for shard k. kFailedPrecondition if already down.
  db::Status Crash(std::uint32_t shard);

  /// Recovers shard k from its directory and rebinds it.
  db::Status Restart(std::uint32_t shard);

  /// Graceful shutdown of every live shard (Close, not Abandon).
  /// Idempotent; the destructor calls it.
  db::Status Stop();

  /// A client channel to shard k (valid across crash/restart cycles).
  std::shared_ptr<rpc::Channel> Connect(std::uint32_t shard) {
    return network_.Connect(shard);
  }
  /// Channels [0, num_shards) — the Router's constructor argument.
  std::vector<std::shared_ptr<rpc::Channel>> ConnectAll();

  const PartitionMap& map() const { return map_; }
  std::uint32_t num_shards() const { return options_.num_shards; }
  bool IsUp(std::uint32_t shard) const;
  rpc::InprocNetwork* network() { return &network_; }

 private:
  /// One shard's store + service, kept alive together by the bound
  /// handler's shared_ptr.
  struct Node {
    std::unique_ptr<db::Store> store;
    std::unique_ptr<MetaService> service;
  };

  explicit Cluster(const ClusterOptions& options);

  db::Options ShardStoreOptions(std::uint32_t shard) const;
  std::string ShardPath(std::uint32_t shard) const;
  db::StatusOr<std::shared_ptr<Node>> OpenShard(std::uint32_t shard) const;
  void BindShard(std::uint32_t shard, const std::shared_ptr<Node>& node);

  const ClusterOptions options_;
  const PartitionMap map_;
  rpc::InprocNetwork network_;

  mutable util::Mutex mu_{util::LockRank::kSvcCluster};
  std::vector<std::shared_ptr<Node>> nodes_ SS_GUARDED_BY(mu_);
  std::vector<char> up_ SS_GUARDED_BY(mu_);
};

}  // namespace smartstore::svc
