#include "svc/meta_service.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "svc/replication.h"

namespace smartstore::svc {

namespace {

/// What a store failure means to a remote client. kFaultInjected (crash
/// point fired) and kFailedPrecondition (handle already torn down) both
/// mean "this shard cannot serve right now" — the retryable kUnavailable.
/// Everything else (kNotFound, kCorruption, ...) is a real answer and
/// passes through.
db::StatusCode client_code(const db::Status& s) {
  if (s.IsFaultInjected() || s.IsFailedPrecondition()) {
    return db::StatusCode::kUnavailable;
  }
  return s.code();
}

void set_result(rpc::Frame* resp, const db::Status& s) {
  resp->status = client_code(s);
  resp->payload.clear();
  if (!s.ok()) rpc::encode_message(s.message(), &resp->payload);
}

/// A retry with the same request id must RE-EXECUTE these (the outcome
/// may change — the shard recovers, the follower acks), so their dedup
/// entries are published-then-erased instead of cached forever.
bool retryable_outcome(db::StatusCode c) {
  return c == db::StatusCode::kUnavailable || c == db::StatusCode::kTimeout;
}

MetaServiceOptions normalize(MetaServiceOptions o) {
  if (o.node_id == MetaServiceOptions::kNodeIsShard) o.node_id = o.shard_id;
  return o;
}

}  // namespace

MetaService::MetaService(db::Store* store, PartitionMap map,
                         MetaServiceOptions options)
    : store_(store), options_(normalize(options)), map_(std::move(map)) {}

PartitionMap MetaService::map() const {
  const util::ReaderLock lock(map_mu_);
  return map_;
}

void MetaService::InstallMap(PartitionMap map) {
  const util::WriterLock lock(map_mu_);
  if (map.version > map_.version) map_ = std::move(map);
}

rpc::Frame MetaService::Handle(const rpc::Frame& req) {
  rpc::Frame resp;
  resp.type = rpc::MsgType::kResponse;
  resp.method = req.method;
  resp.shard = options_.shard_id;
  resp.client_id = req.client_id;
  resp.seq = req.seq;
  {
    const util::ReaderLock lock(map_mu_);
    resp.map_version = map_.version;
  }

  if (req.type != rpc::MsgType::kRequest) {
    set_result(&resp,
               db::Status::InvalidArgument("response frame sent as request"));
    return resp;
  }

  switch (req.method) {
    case rpc::Method::kPing:
      resp.payload = req.payload;  // echo
      break;
    case rpc::Method::kPut:
      HandlePut(req, &resp);
      break;
    case rpc::Method::kDelete:
      HandleDelete(req, &resp);
      break;
    case rpc::Method::kBatchWrite:
      HandleBatch(req, &resp);
      break;
    case rpc::Method::kPointQuery:
      HandlePointQuery(req, &resp);
      break;
    case rpc::Method::kRangeQuery:
      HandleRangeQuery(req, &resp);
      break;
    case rpc::Method::kTopKQuery:
      HandleTopKQuery(req, &resp);
      break;
    case rpc::Method::kFlush:
      HandleFlush(&resp);
      break;
    case rpc::Method::kGetMap:
      HandleGetMap(&resp);
      break;
    case rpc::Method::kStats:
      HandleStats(&resp);
      break;
    case rpc::Method::kSnapPin:
      HandleSnapPin(&resp);
      break;
    case rpc::Method::kSnapRelease:
      HandleSnapRelease(req, &resp);
      break;
    case rpc::Method::kReplAppend:
      HandleReplAppend(req, &resp);
      break;
    case rpc::Method::kReplFrontier:
      HandleReplFrontier(&resp);
      break;
    case rpc::Method::kReplBootstrap:
      HandleReplBootstrap(req, &resp);
      break;
  }
  return resp;
}

// ---- dedup ------------------------------------------------------------------

bool MetaService::Claim(const DedupKey& key, db::StatusCode* status,
                        std::vector<std::uint8_t>* payload) {
  util::UniqueLock lock(dedup_mu_);
  auto it = dedup_.find(key);
  if (it == dedup_.end()) {
    dedup_.emplace(key, std::make_shared<DedupEntry>());
    dedup_fifo_.push_back(key);
    // FIFO eviction of COMPLETED entries only: a pending entry at the
    // front blocks eviction (it has live waiters; capacity overshoot is
    // bounded by in-flight requests).
    while (dedup_fifo_.size() > options_.dedup_capacity) {
      const DedupKey victim = dedup_fifo_.front();
      auto vit = dedup_.find(victim);
      if (vit != dedup_.end() && !vit->second->done) break;
      dedup_fifo_.pop_front();
      if (vit != dedup_.end()) dedup_.erase(vit);
    }
    return true;
  }
  // Duplicate: wait out a pending twin, then replay the published answer.
  // The shared_ptr keeps the entry alive independent of eviction.
  const std::shared_ptr<DedupEntry> entry = it->second;
  dup_hits_.fetch_add(1, std::memory_order_relaxed);
  dedup_cv_.wait(lock, [&] { return entry->done; });
  *status = entry->status;
  *payload = entry->payload;
  return false;
}

void MetaService::Publish(const DedupKey& key, db::StatusCode status,
                          const std::vector<std::uint8_t>& payload) {
  {
    const util::MutexLock lock(dedup_mu_);
    auto it = dedup_.find(key);
    if (it != dedup_.end()) {
      it->second->status = status;
      it->second->payload = payload;
      it->second->done = true;
      // A retryable outcome (shard mid-crash, follower ack timed out) must
      // not be replayed to a LATER retry of the same id — the retry has to
      // re-execute and may now succeed. Waiters already parked on this
      // entry still read it through their shared_ptr; the stale fifo key
      // is skipped harmlessly by Claim's eviction sweep.
      if (retryable_outcome(status)) dedup_.erase(it);
    }
  }
  dedup_cv_.notify_all();
}

// ---- keyed mutations --------------------------------------------------------

db::Status MetaService::ApplyPut(const metadata::FileMetadata& file) {
  // Upsert: replace-on-exists, so a retry replayed after a crash (empty
  // dedup table) converges to the same record instead of duplicating it.
  const db::Status removed = store_->Delete(file.name);
  if (!removed.ok() && !removed.IsNotFound()) return removed;
  return store_->Put(file);
}

db::Status MetaService::ApplyDelete(const std::string& name) {
  // Idempotent: "already absent" and "deleted it" are the same outcome to
  // a client whose earlier attempt may have applied invisibly.
  const db::Status s = store_->Delete(name);
  if (s.IsNotFound()) return db::Status();
  return s;
}

db::Status MetaService::AckDurable() {
  ReplicationSender* sender = sender_.load(std::memory_order_acquire);
  if (!sender) return db::Status();
  // LatestSequence is at or above the seq this mutation committed at, so
  // waiting on it covers the mutation (plus any concurrent neighbors —
  // they are about to need the same ack anyway).
  return sender->WaitDurable(store_->LatestSequence(),
                             options_.repl_ack_timeout_ms);
}

bool MetaService::RejectNotPrimary(rpc::Frame* resp) {
  const util::ReaderLock lock(map_mu_);
  if (map_.primary_node_of(options_.shard_id) == options_.node_id) {
    return false;
  }
  wrong_shard_.fetch_add(1, std::memory_order_relaxed);
  resp->status = db::StatusCode::kWrongShard;
  resp->payload.clear();
  encode_partition_map(map_, &resp->payload);
  return true;
}

bool MetaService::RejectWrongShard(const std::string& name,
                                   rpc::Frame* resp) {
  const util::ReaderLock lock(map_mu_);
  const std::uint32_t owner = map_.shard_of(name);
  // Two ways this node must not serve the key: the owning shard is a
  // different one (classic resharding), or it is THIS shard but this node
  // is not its primary (a follower, or a deposed primary that already
  // adopted the post-promotion map). Both answer with the installed map —
  // the redirect teaches the stale client the authoritative routing (and
  // the new primary) in one round trip.
  if (owner == options_.shard_id &&
      map_.primary_node_of(owner) == options_.node_id) {
    return false;
  }
  wrong_shard_.fetch_add(1, std::memory_order_relaxed);
  resp->status = db::StatusCode::kWrongShard;
  resp->payload.clear();
  encode_partition_map(map_, &resp->payload);
  return true;
}

bool MetaService::RejectStaleEpoch(const rpc::Frame& req, rpc::Frame* resp) {
  std::uint64_t epoch;
  {
    const util::ReaderLock lock(map_mu_);
    epoch = map_.epoch;
  }
  // Replication frames carry the sender's epoch in map_version. A lower
  // epoch means the sender lost a promotion it has not heard about yet:
  // applying (or acking) its records would resurrect the split brain the
  // epoch exists to prevent. kFailedPrecondition is NOT mapped to
  // kUnavailable for replication methods — the sender must see it raw and
  // self-depose.
  if (req.map_version >= epoch) return false;
  resp->status = db::StatusCode::kFailedPrecondition;
  resp->payload.clear();
  rpc::encode_message("stale replication epoch " +
                          std::to_string(req.map_version) + " < " +
                          std::to_string(epoch),
                      &resp->payload);
  return true;
}

void MetaService::HandlePut(const rpc::Frame& req, rpc::Frame* resp) {
  metadata::FileMetadata file;
  db::Status s = rpc::decode_file(req.payload, &file);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  // Ownership before dedup: a wrong-shard rejection must not occupy a
  // request id the client will reuse against the right shard.
  if (RejectWrongShard(file.name, resp)) return;

  const DedupKey key{req.client_id, req.seq};
  db::StatusCode code = db::StatusCode::kOk;
  std::vector<std::uint8_t> payload;
  if (!Claim(key, &code, &payload)) {
    resp->status = code;
    resp->payload = std::move(payload);
    return;
  }
  s = ApplyPut(file);  // no service lock held (store is rank 0)
  // The ack barrier: the response may not leave until the write is as
  // durable as the replication mode promises. A kTimeout here is NOT an
  // ack — the dedup entry is published-then-erased, so the client's retry
  // re-executes (idempotently) instead of replaying the failure.
  if (s.ok()) s = AckDurable();
  if (s.ok()) applied_puts_.fetch_add(1, std::memory_order_relaxed);
  set_result(resp, s);
  Publish(key, resp->status, resp->payload);
}

void MetaService::HandleDelete(const rpc::Frame& req, rpc::Frame* resp) {
  std::string name;
  db::Status s = rpc::decode_name(req.payload, &name);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  if (RejectWrongShard(name, resp)) return;

  const DedupKey key{req.client_id, req.seq};
  db::StatusCode code = db::StatusCode::kOk;
  std::vector<std::uint8_t> payload;
  if (!Claim(key, &code, &payload)) {
    resp->status = code;
    resp->payload = std::move(payload);
    return;
  }
  s = ApplyDelete(name);
  if (s.ok()) s = AckDurable();  // see HandlePut
  if (s.ok()) applied_deletes_.fetch_add(1, std::memory_order_relaxed);
  set_result(resp, s);
  Publish(key, resp->status, resp->payload);
}

void MetaService::HandleBatch(const rpc::Frame& req, rpc::Frame* resp) {
  std::vector<rpc::BatchOp> ops;
  db::Status s = rpc::decode_batch(req.payload, &ops);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  // The whole batch must belong here; the router splits per shard, so a
  // mixed batch means a stale map — reject before anything applies.
  for (const rpc::BatchOp& op : ops) {
    const std::string& name = op.is_put ? op.file.name : op.name;
    if (RejectWrongShard(name, resp)) return;
  }

  const DedupKey key{req.client_id, req.seq};
  db::StatusCode code = db::StatusCode::kOk;
  std::vector<std::uint8_t> payload;
  if (!Claim(key, &code, &payload)) {
    resp->status = code;
    resp->payload = std::move(payload);
    return;
  }
  // Applied op-by-op through the idempotent forms, in order, so a replay
  // after a mid-batch crash re-converges instead of double-applying the
  // prefix that made it to the WAL.
  s = db::Status();
  for (const rpc::BatchOp& op : ops) {
    s = op.is_put ? ApplyPut(op.file) : ApplyDelete(op.name);
    if (!s.ok()) break;
    if (op.is_put) {
      applied_puts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      applied_deletes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // One barrier for the whole batch: LatestSequence covers every op.
  if (s.ok()) s = AckDurable();
  set_result(resp, s);
  Publish(key, resp->status, resp->payload);
}

// ---- queries ----------------------------------------------------------------

void MetaService::HandlePointQuery(const rpc::Frame& req, rpc::Frame* resp) {
  metadata::PointQuery q;
  std::uint64_t as_of = 0;
  db::Status s = rpc::decode_point_query(req.payload, &q, &as_of);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  if (RejectWrongShard(q.filename, resp)) return;
  db::StatusOr<db::QueryResult> r =
      as_of != rpc::kAsOfLatest
          ? store_->Query(db::QueryRequest::Point(std::move(q)),
                          db::ReadOptions{as_of - 1})
          : store_->Query(db::QueryRequest::Point(std::move(q)));
  if (!r.ok()) {
    set_result(resp, r.status());
    return;
  }
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_query_result(*r, &resp->payload);
}

void MetaService::HandleRangeQuery(const rpc::Frame& req, rpc::Frame* resp) {
  metadata::RangeQuery q;
  std::uint64_t as_of = 0;
  db::Status s = rpc::decode_range_query(req.payload, &q, &as_of);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  // Scatter slices must come from the primary: a follower's view lags by
  // the in-flight replication window.
  if (RejectNotPrimary(resp)) return;
  // A pinned as-of token selects the exact snapshot scan (time travel /
  // pinned scatter-gather); kAsOfLatest keeps the routed read path.
  db::StatusOr<db::QueryResult> r =
      as_of != rpc::kAsOfLatest
          ? store_->Query(db::QueryRequest::Range(std::move(q)),
                          db::ReadOptions{as_of - 1})
          : store_->Query(db::QueryRequest::Range(std::move(q)));
  if (!r.ok()) {
    set_result(resp, r.status());
    return;
  }
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_query_result(*r, &resp->payload);
}

void MetaService::HandleTopKQuery(const rpc::Frame& req, rpc::Frame* resp) {
  metadata::TopKQuery q;
  std::uint64_t as_of = 0;
  db::Status s = rpc::decode_topk_query(req.payload, &q, &as_of);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  if (RejectNotPrimary(resp)) return;  // see HandleRangeQuery
  db::StatusOr<db::QueryResult> r =
      as_of != rpc::kAsOfLatest
          ? store_->Query(db::QueryRequest::TopK(std::move(q)),
                          db::ReadOptions{as_of - 1})
          : store_->Query(db::QueryRequest::TopK(std::move(q)));
  if (!r.ok()) {
    set_result(resp, r.status());
    return;
  }
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_query_result(*r, &resp->payload);
}

// ---- control ----------------------------------------------------------------

void MetaService::HandleFlush(rpc::Frame* resp) {
  // An in-memory shard has no WAL to commit; "everything acked is as
  // durable as it will ever be" is trivially true, not a precondition
  // failure the client should retry.
  if (store_->options().in_memory) {
    set_result(resp, db::Status());
    return;
  }
  set_result(resp, store_->Flush());
}

void MetaService::HandleGetMap(rpc::Frame* resp) {
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  const util::ReaderLock lock(map_mu_);
  encode_partition_map(map_, &resp->payload);
}

void MetaService::HandleStats(rpc::Frame* resp) {
  rpc::ShardStats stats;
  stats.applied_puts = applied_puts_.load(std::memory_order_relaxed);
  stats.applied_deletes = applied_deletes_.load(std::memory_order_relaxed);
  stats.dup_hits = dup_hits_.load(std::memory_order_relaxed);
  stats.wrong_shard = wrong_shard_.load(std::memory_order_relaxed);
  std::string value;
  if (store_->GetProperty("smartstore.total-files", &value)) {
    stats.total_files = std::strtoull(value.c_str(), nullptr, 10);
  }
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_shard_stats(stats, &resp->payload);
}

// ---- snapshot leases --------------------------------------------------------

void MetaService::HandleSnapPin(rpc::Frame* resp) {
  // A follower's pin would anchor a lagging cut.
  if (RejectNotPrimary(resp)) return;
  // Pin first, with no service lock held: GetSnapshot enters the store
  // (rank 0), so taking lease_mu_ (rank kSvcLease) around it would invert
  // the lock order the validator enforces.
  db::StatusOr<db::Snapshot> snap = store_->GetSnapshot();
  if (!snap.ok()) {
    set_result(resp, snap.status());
    return;
  }

  rpc::SnapshotLease lease;
  {
    const util::MutexLock lock(lease_mu_);
    // TTL sweep: drop leases whose clients went away without releasing,
    // so their pins stop holding the GC watermark back.
    const auto now = std::chrono::steady_clock::now();
    for (auto it = leases_.begin(); it != leases_.end();) {
      it = it->second.expires <= now ? leases_.erase(it) : std::next(it);
    }
    if (leases_.size() >= options_.snapshot_lease_capacity) {
      set_result(resp, db::Status::Unavailable(
                           "snapshot lease table full; retry or read latest"));
      return;
    }
    lease.lease_id = next_lease_id_++;
    lease.seq = snap->sequence();
    leases_.emplace(
        lease.lease_id,
        LeaseEntry{*std::move(snap),
                   now + std::chrono::milliseconds(
                             options_.snapshot_lease_ttl_ms)});
  }
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_snapshot_lease(lease, &resp->payload);
}

void MetaService::HandleSnapRelease(const rpc::Frame& req, rpc::Frame* resp) {
  rpc::SnapshotLease lease;
  const db::Status s = rpc::decode_snapshot_lease(req.payload, &lease);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  {
    const util::MutexLock lock(lease_mu_);
    // Releasing an unknown (already swept) lease is success: the client's
    // goal — "my pin is gone" — already holds.
    leases_.erase(lease.lease_id);
  }
  set_result(resp, db::Status());
}

// ---- replication (follower role) --------------------------------------------

void MetaService::HandleReplAppend(const rpc::Frame& req, rpc::Frame* resp) {
  if (RejectStaleEpoch(req, resp)) return;
  rpc::ReplBatch batch;
  db::Status s = rpc::decode_repl_batch(req.payload, &batch);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  std::uint64_t frontier = store_->LatestSequence();
  if (!batch.ops.empty()) {
    std::vector<db::ReplicatedOp> ops;
    ops.reserve(batch.ops.size());
    for (rpc::ReplOp& op : batch.ops) {
      db::ReplicatedOp r;
      r.is_insert = op.is_insert;
      r.is_noop = op.is_noop;
      r.seq = op.seq;
      r.file = std::move(op.file);
      r.name = std::move(op.name);
      ops.push_back(std::move(r));
    }
    s = store_->ApplyReplicated(ops, &frontier);
    if (!s.ok()) {
      set_result(resp, s);  // store errors map to kUnavailable, not a depose
      return;
    }
  }
  // The sync flag latches: from the primary's mouth, this replica's
  // frontier now covers every acked write, so it is promotion-eligible.
  if (batch.sync_engaged) ready_.store(true, std::memory_order_release);
  rpc::ReplStatus st;
  st.frontier = frontier;
  st.ready = ready_.load(std::memory_order_acquire);
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_repl_status(st, &resp->payload);
}

void MetaService::HandleReplFrontier(rpc::Frame* resp) {
  // The promotion scan's probe. No epoch check: reading the frontier is
  // harmless from anyone, and the manager may legitimately probe with an
  // older map in hand.
  rpc::ReplStatus st;
  st.frontier = store_->LatestSequence();
  st.ready = ready_.load(std::memory_order_acquire);
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_repl_status(st, &resp->payload);
}

void MetaService::HandleReplBootstrap(const rpc::Frame& req,
                                      rpc::Frame* resp) {
  if (RejectStaleEpoch(req, resp)) return;
  rpc::ReplBootstrap boot;
  db::Status s = rpc::decode_repl_bootstrap(req.payload, &boot);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  // LoadBootstrap enforces the empty-store precondition itself (a stale
  // replica must be wiped and reopened by the cluster, never overwritten).
  s = store_->LoadBootstrap(boot.seq, boot.files);
  if (!s.ok()) {
    set_result(resp, s);
    return;
  }
  ready_.store(false, std::memory_order_release);  // not caught up yet
  rpc::ReplStatus st;
  st.frontier = store_->LatestSequence();
  st.ready = false;
  resp->status = db::StatusCode::kOk;
  resp->payload.clear();
  rpc::encode_repl_status(st, &resp->payload);
}

}  // namespace smartstore::svc
