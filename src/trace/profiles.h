// Statistical profiles of the three file-system traces the paper evaluates
// on: HP (Riedel et al., FAST'02), MSN (Kavalanekar et al., IISWC'08) and
// EECS (Ellard et al., FAST'03).
//
// The production traces themselves are not redistributable, so this module
// records (a) the headline statistics the paper reports in Tables 1-3,
// which the Table 1-3 bench reprints at original and TIF-intensified scale,
// and (b) generation parameters for the synthetic workload that stands in
// for each trace: file-count scale, size distribution, popularity skew,
// read/write mix, duration and semantic-cluster structure. The synthetic
// stand-ins preserve the skew and correlation properties SmartStore's
// grouping exploits (Zipf popularity, lognormal sizes, clustered
// multi-dimensional attributes).
#pragma once

#include <string>
#include <vector>

namespace smartstore::trace {

enum class TraceKind { kHP, kMSN, kEECS };

const char* trace_name(TraceKind k);

/// One row of a paper scale-up table: the scaled value is original * TIF
/// (the paper's sub-trace replication multiplies every count linearly).
struct HeadlineStat {
  std::string label;
  double original;
  std::string unit;
};

/// Workload-generation parameters for the synthetic stand-in.
struct GenParams {
  std::size_t files_per_subtrace = 20000;  ///< file count at TIF=1
  std::size_t ops_per_subtrace = 60000;    ///< I/O ops at TIF=1
  double duration_sec = 6 * 3600.0;        ///< trace duration
  double size_lognormal_mu = 11.0;         ///< ln-bytes mean (~60KB median)
  double size_lognormal_sigma = 2.2;       ///< heavy-tailed sizes
  double popularity_zipf_theta = 0.9;      ///< file popularity skew
  double read_fraction = 0.7;              ///< reads / (reads + writes)
  std::size_t num_owners = 200;            ///< distinct user/process ids
  std::size_t num_clusters = 48;           ///< semantic application clusters
  double cluster_attr_spread = 0.08;       ///< intra-cluster jitter (rel.)
};

struct TraceProfile {
  TraceKind kind;
  std::string name;
  int paper_tif;  ///< the TIF the paper's Tables 1-3 use (80 / 100 / 150)
  std::vector<HeadlineStat> headline;
  GenParams gen;
};

TraceProfile hp_profile();
TraceProfile msn_profile();
TraceProfile eecs_profile();
TraceProfile profile_for(TraceKind k);

}  // namespace smartstore::trace
