#include "trace/profiles.h"

namespace smartstore::trace {

const char* trace_name(TraceKind k) {
  switch (k) {
    case TraceKind::kHP: return "HP";
    case TraceKind::kMSN: return "MSN";
    case TraceKind::kEECS: return "EECS";
  }
  return "?";
}

TraceProfile hp_profile() {
  TraceProfile p;
  p.kind = TraceKind::kHP;
  p.name = "HP";
  p.paper_tif = 80;  // Table 1
  p.headline = {
      {"request (million)", 94.7, "M"},
      {"active users", 32, ""},
      {"user accounts", 207, ""},
      {"active files (million)", 0.969, "M"},
      {"total files (million)", 4, "M"},
  };
  // HP is a long-duration departmental server trace: many users, mixed
  // project directories, moderate popularity skew.
  p.gen.files_per_subtrace = 20000;
  p.gen.ops_per_subtrace = 80000;
  p.gen.duration_sec = 24 * 3600.0;
  p.gen.size_lognormal_mu = 10.5;
  p.gen.size_lognormal_sigma = 2.4;
  p.gen.popularity_zipf_theta = 0.85;
  p.gen.read_fraction = 0.65;
  p.gen.num_owners = 207;
  p.gen.num_clusters = 64;
  p.gen.cluster_attr_spread = 0.08;
  return p;
}

TraceProfile msn_profile() {
  TraceProfile p;
  p.kind = TraceKind::kMSN;
  p.name = "MSN";
  p.paper_tif = 100;  // Table 2
  p.headline = {
      {"# of files (million)", 1.25, "M"},
      {"total READ (million)", 3.30, "M"},
      {"total WRITE (million)", 1.17, "M"},
      {"duration (hours)", 6, "h"},
      {"total I/O (million)", 4.47, "M"},
  };
  // MSN is a production Windows-server storage trace: hot production data,
  // strong skew, read-dominated, short duration.
  p.gen.files_per_subtrace = 12500;
  p.gen.ops_per_subtrace = 44700;
  p.gen.duration_sec = 6 * 3600.0;
  p.gen.size_lognormal_mu = 11.5;
  p.gen.size_lognormal_sigma = 2.0;
  p.gen.popularity_zipf_theta = 1.05;
  p.gen.read_fraction = 3.30 / 4.47;
  p.gen.num_owners = 96;
  p.gen.num_clusters = 48;
  p.gen.cluster_attr_spread = 0.06;
  return p;
}

TraceProfile eecs_profile() {
  TraceProfile p;
  p.kind = TraceKind::kEECS;
  p.name = "EECS";
  p.paper_tif = 150;  // Table 3
  p.headline = {
      {"total READ (million)", 0.46, "M"},
      {"READ size (GB)", 5.1, "GB"},
      {"total WRITE (million)", 0.667, "M"},
      {"WRITE size (GB)", 9.1, "GB"},
      {"total operations (million)", 4.44, "M"},
  };
  // EECS is an NFS trace of email + research workloads: many small files,
  // write-heavy, strong re-open locality.
  p.gen.files_per_subtrace = 15000;
  p.gen.ops_per_subtrace = 44400;
  p.gen.duration_sec = 12 * 3600.0;
  p.gen.size_lognormal_mu = 9.5;
  p.gen.size_lognormal_sigma = 2.1;
  p.gen.popularity_zipf_theta = 0.95;
  p.gen.read_fraction = 0.46 / (0.46 + 0.667);
  p.gen.num_owners = 120;
  p.gen.num_clusters = 56;
  p.gen.cluster_attr_spread = 0.07;
  return p;
}

TraceProfile profile_for(TraceKind k) {
  switch (k) {
    case TraceKind::kHP: return hp_profile();
    case TraceKind::kMSN: return msn_profile();
    case TraceKind::kEECS: return eecs_profile();
  }
  return hp_profile();
}

}  // namespace smartstore::trace
