// Synthetic trace generation and TIF scaling (Section 5.1).
//
// The generator produces a file-metadata population with the correlation
// structure SmartStore exploits: files belong to semantic "application
// clusters" (a project build tree, a mail spool, a media library...) whose
// members share correlated sizes, timestamps, owners and access statistics.
// On top of the population it synthesizes an I/O operation stream with
// Zipf file popularity and exponential inter-arrival gaps.
//
// TIF scaling follows the paper exactly: a trace is decomposed into
// sub-traces; every file gains a unique sub-trace ID (widening the working
// set), all sub-traces start at time zero and are replayed concurrently,
// and the per-sub-trace operation histogram is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "metadata/file_metadata.h"
#include "trace/profiles.h"
#include "util/rng.h"

namespace smartstore::trace {

/// One I/O operation in the replayed stream.
struct TraceOp {
  double time = 0;            ///< seconds from trace start
  metadata::FileId file = 0;
  bool is_read = true;
  double bytes = 0;
};

/// Aggregate statistics of a generated trace, for the Tables 1-3 harness.
struct GeneratedStats {
  std::size_t files = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  double read_bytes = 0;
  double write_bytes = 0;
  double duration_sec = 0;
  std::size_t owners = 0;
};

class SyntheticTrace {
 public:
  /// Generates a trace for `profile` at the given Trace Intensifying
  /// Factor. `tif` sub-traces are produced, each with
  /// profile.gen.files_per_subtrace / `downscale` files (downscale lets the
  /// experiment harnesses trade population size for runtime without
  /// changing distribution shape). Deterministic in `seed`.
  static SyntheticTrace generate(const TraceProfile& profile, unsigned tif,
                                 std::uint64_t seed, unsigned downscale = 1);

  const TraceProfile& profile() const { return profile_; }
  unsigned tif() const { return tif_; }

  const std::vector<metadata::FileMetadata>& files() const { return files_; }
  const std::vector<TraceOp>& ops() const { return ops_; }

  GeneratedStats stats() const;

  /// Synthesizes `n` additional files drawn from the same cluster model,
  /// with creation times after the trace end: the insert stream used by the
  /// versioning/staleness experiments (Tables 5-6). Ids continue after the
  /// existing population.
  std::vector<metadata::FileMetadata> make_insert_stream(std::size_t n,
                                                         std::uint64_t seed)
      const;

 private:
  struct Cluster {
    la::Vector center;        // kNumAttrs raw-space center
    double weight = 1.0;      // popularity of the cluster
    std::size_t owner = 0;
  };

  metadata::FileMetadata synth_file(metadata::FileId id, unsigned subtrace,
                                    std::size_t cluster_idx,
                                    std::size_t index_in_cluster,
                                    util::Rng& rng) const;

  TraceProfile profile_;
  unsigned tif_ = 1;
  std::vector<Cluster> clusters_;
  std::vector<metadata::FileMetadata> files_;
  std::vector<TraceOp> ops_;
};

}  // namespace smartstore::trace
