// Synthetic complex-query generation (Section 5.1).
//
// No public traces contain range/top-k requests, so the paper statistically
// generates query points in the multi-dimensional attribute space under
// Uniform, Gauss, or Zipf coordinate distributions; we do the same.
//   * Uniform: coordinates uniform over each attribute's populated band
//     (5th..95th percentile; the raw min..max range of heavy-tailed
//     attributes is almost entirely dead space).
//   * Gauss:  coordinates normal around each attribute's mean.
//   * Zipf:   the query targets the neighborhood of a Zipf-popular file
//             (queries concentrate around hot regions, the behaviour that
//             gives Zipf its higher recall in Figure 10).
#pragma once

#include <cstdint>

#include "metadata/query.h"
#include "trace/synth.h"
#include "util/rng.h"

namespace smartstore::trace {

enum class QueryDistribution { kUniform, kGauss, kZipf };

const char* distribution_name(QueryDistribution d);

class QueryGenerator {
 public:
  /// Fits per-attribute ranges/means over the trace population.
  QueryGenerator(const SyntheticTrace& trace, QueryDistribution dist,
                 std::uint64_t seed);

  /// A filename point query; with probability `exist_prob` the name is an
  /// existing file (drawn Zipf-popular), otherwise a never-created name.
  metadata::PointQuery gen_point(double exist_prob = 0.9);

  /// A range query over `dims`: a box around a drawn center covering
  /// roughly `width_frac` of each dimension's observed spread.
  metadata::RangeQuery gen_range(const metadata::AttrSubset& dims,
                                 double width_frac = 0.05);

  /// A top-k query at a drawn point.
  metadata::TopKQuery gen_topk(const metadata::AttrSubset& dims,
                               std::size_t k = 8);

 private:
  /// Draws one coordinate for attribute `a` under the configured
  /// distribution; for Zipf the anchor file chosen per-query is used.
  double draw_coord(metadata::Attr a, const metadata::FileMetadata* anchor);

  /// Picks the per-query anchor (Zipf only).
  const metadata::FileMetadata* pick_anchor();

  const SyntheticTrace& trace_;
  QueryDistribution dist_;
  util::Rng rng_;
  util::ZipfGenerator zipf_;
  la::Vector min_, max_, mean_, stdev_, p5_, p95_;
};

}  // namespace smartstore::trace
