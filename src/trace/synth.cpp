#include "trace/synth.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

namespace smartstore::trace {

using metadata::Attr;
using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

namespace {

/// Draws a cluster center: each application cluster occupies a coherent
/// region of the attribute space (similar sizes, a shared creation epoch,
/// one owner, similar access statistics).
la::Vector draw_cluster_center(const GenParams& gen, std::size_t owner,
                               util::Rng& rng) {
  la::Vector c(kNumAttrs, 0.0);
  const double size_scale = rng.lognormal(gen.size_lognormal_mu,
                                          gen.size_lognormal_sigma * 0.7);
  const double epoch = rng.uniform(0.0, gen.duration_sec * 0.8);
  const double activity = rng.lognormal(2.0, 1.0);  // ops/hour scale

  c[static_cast<std::size_t>(Attr::kFileSize)] = size_scale;
  c[static_cast<std::size_t>(Attr::kCreationTime)] = epoch;
  c[static_cast<std::size_t>(Attr::kModificationTime)] =
      epoch + rng.uniform(0.0, gen.duration_sec * 0.1);
  c[static_cast<std::size_t>(Attr::kAccessTime)] =
      epoch + rng.uniform(0.0, gen.duration_sec * 0.2);
  c[static_cast<std::size_t>(Attr::kReadCount)] = activity * gen.read_fraction;
  c[static_cast<std::size_t>(Attr::kWriteCount)] =
      activity * (1.0 - gen.read_fraction);
  c[static_cast<std::size_t>(Attr::kReadBytes)] =
      size_scale * activity * gen.read_fraction * 0.3;
  c[static_cast<std::size_t>(Attr::kWriteBytes)] =
      size_scale * activity * (1.0 - gen.read_fraction) * 0.3;
  c[static_cast<std::size_t>(Attr::kAccessFrequency)] = activity;
  c[static_cast<std::size_t>(Attr::kOwnerId)] = static_cast<double>(owner);
  return c;
}

}  // namespace

FileMetadata SyntheticTrace::synth_file(FileId id, unsigned subtrace,
                                        std::size_t cluster_idx,
                                        std::size_t index_in_cluster,
                                        util::Rng& rng) const {
  const GenParams& gen = profile_.gen;
  const Cluster& cl = clusters_[cluster_idx];
  FileMetadata f;
  f.id = id;
  char buf[96];
  // Unique sub-trace ID on every filename, per the paper's scale-up rule.
  std::snprintf(buf, sizeof(buf), "/sub%u/u%03zu/app%03zu/f%06zu.dat",
                subtrace, cl.owner, cluster_idx, index_in_cluster);
  f.name = buf;

  const double spread = gen.cluster_attr_spread;
  auto jitter_mul = [&](double v) {
    // Multiplicative lognormal jitter keeps positive attributes positive.
    return v * std::exp(rng.gauss(0.0, spread * 3.0));
  };
  auto jitter_add = [&](double v, double scale) {
    return v + rng.gauss(0.0, spread * scale);
  };

  const auto& c = cl.center;
  f.set_attr(Attr::kFileSize,
             std::max(1.0, jitter_mul(c[static_cast<std::size_t>(
                 Attr::kFileSize)])));
  const double dur = gen.duration_sec;
  double ctime = std::clamp(
      jitter_add(c[static_cast<std::size_t>(Attr::kCreationTime)], dur), 0.0,
      dur);
  double mtime = std::clamp(
      std::max(ctime, jitter_add(c[static_cast<std::size_t>(
                                     Attr::kModificationTime)], dur)),
      ctime, dur);
  double atime = std::clamp(
      std::max(mtime, jitter_add(c[static_cast<std::size_t>(
                                     Attr::kAccessTime)], dur)),
      mtime, dur);
  f.set_attr(Attr::kCreationTime, ctime);
  f.set_attr(Attr::kModificationTime, mtime);
  f.set_attr(Attr::kAccessTime, atime);

  const double rd = std::max(
      0.0, jitter_mul(c[static_cast<std::size_t>(Attr::kReadCount)]));
  const double wr = std::max(
      0.0, jitter_mul(c[static_cast<std::size_t>(Attr::kWriteCount)]));
  f.set_attr(Attr::kReadCount, std::floor(rd));
  f.set_attr(Attr::kWriteCount, std::floor(wr));
  f.set_attr(Attr::kReadBytes,
             std::max(0.0, jitter_mul(c[static_cast<std::size_t>(
                 Attr::kReadBytes)])));
  f.set_attr(Attr::kWriteBytes,
             std::max(0.0, jitter_mul(c[static_cast<std::size_t>(
                 Attr::kWriteBytes)])));
  f.set_attr(Attr::kAccessFrequency,
             std::max(0.0, jitter_mul(c[static_cast<std::size_t>(
                 Attr::kAccessFrequency)])));
  f.set_attr(Attr::kOwnerId, c[static_cast<std::size_t>(Attr::kOwnerId)]);
  return f;
}

SyntheticTrace SyntheticTrace::generate(const TraceProfile& profile,
                                        unsigned tif, std::uint64_t seed,
                                        unsigned downscale) {
  SyntheticTrace t;
  t.profile_ = profile;
  t.tif_ = std::max(1u, tif);
  util::Rng rng(seed);
  const GenParams& gen = profile.gen;

  // Cluster model shared by all sub-traces (the paper's sub-traces are
  // copies of the same workload; widening comes from the sub-trace IDs).
  t.clusters_.resize(gen.num_clusters);
  util::ZipfGenerator cluster_pop(gen.num_clusters, 0.8);
  for (std::size_t i = 0; i < gen.num_clusters; ++i) {
    Cluster& cl = t.clusters_[i];
    cl.owner = rng.uniform_u64(gen.num_owners);
    cl.center = draw_cluster_center(gen, cl.owner, rng);
    cl.weight = 1.0;
  }

  const std::size_t files_per_sub =
      std::max<std::size_t>(1, gen.files_per_subtrace / std::max(1u, downscale));
  const std::size_t ops_per_sub =
      std::max<std::size_t>(1, gen.ops_per_subtrace / std::max(1u, downscale));

  t.files_.reserve(files_per_sub * t.tif_);
  std::vector<std::size_t> per_cluster_count(gen.num_clusters, 0);
  FileId next_id = 1;
  for (unsigned s = 0; s < t.tif_; ++s) {
    for (std::size_t i = 0; i < files_per_sub; ++i) {
      const std::size_t ci = cluster_pop.sample(rng);
      t.files_.push_back(
          t.synth_file(next_id++, s, ci, per_cluster_count[ci]++, rng));
    }
  }

  // Operation stream: all sub-traces replayed concurrently from time zero.
  // Accesses exhibit two skews observed in real workloads: Zipf popularity
  // within a cluster, and *semantic burst locality* — an application works
  // inside one cluster for a run of operations before switching (the
  // inter-file correlation Nexus/FARMER report: up to 80% probability of
  // accessing a correlated file next). This is what semantic prefetching
  // exploits in the Section 5.3 caching application.
  std::vector<std::vector<std::size_t>> files_of_cluster(gen.num_clusters);
  {
    // Recover each file's cluster from the generation order: files were
    // appended with their cluster index recorded in per_cluster_count, so
    // recompute by matching names is unnecessary — regenerate assignment.
    // (Names encode "appNNN", the cluster id.)
    for (std::size_t i = 0; i < t.files_.size(); ++i) {
      const std::string& name = t.files_[i].name;
      const std::size_t pos = name.find("/app");
      const std::size_t cl =
          static_cast<std::size_t>(std::stoul(name.substr(pos + 4, 3)));
      files_of_cluster[cl].push_back(i);
    }
  }
  util::ZipfGenerator cluster_access(gen.num_clusters, 0.9);

  t.ops_.reserve(ops_per_sub * t.tif_);
  for (unsigned s = 0; s < t.tif_; ++s) {
    double clock = 0.0;
    const double mean_gap = gen.duration_sec / static_cast<double>(ops_per_sub);
    std::size_t current_cluster = cluster_access.sample(rng);
    for (std::size_t i = 0; i < ops_per_sub; ++i) {
      clock += rng.exponential(1.0 / mean_gap);
      // Burst switching: ~10% chance to move to another (Zipf-hot) cluster.
      if (files_of_cluster[current_cluster].empty() || rng.bernoulli(0.1)) {
        current_cluster = cluster_access.sample(rng);
        int guard = 0;
        while (files_of_cluster[current_cluster].empty() && guard++ < 64)
          current_cluster = cluster_access.sample(rng);
      }
      const auto& members = files_of_cluster[current_cluster];
      if (members.empty()) continue;
      // Zipf-popular file within the cluster.
      const double u = rng.uniform();
      const double skew = std::pow(u, 1.0 + gen.popularity_zipf_theta);
      const std::size_t fidx =
          members[static_cast<std::size_t>(skew *
                                           static_cast<double>(members.size() -
                                                               1))];
      TraceOp op;
      op.time = std::min(clock, gen.duration_sec);
      op.file = t.files_[fidx].id;
      op.is_read = rng.bernoulli(gen.read_fraction);
      // Transfer sizes: a fraction of the file, heavy-tailed.
      const double fsize = t.files_[fidx].attr(Attr::kFileSize);
      op.bytes = std::min(fsize, rng.lognormal(std::log(fsize + 1) - 2.0, 1.0));
      t.ops_.push_back(op);
    }
  }
  std::sort(t.ops_.begin(), t.ops_.end(),
            [](const TraceOp& a, const TraceOp& b) { return a.time < b.time; });
  return t;
}

GeneratedStats SyntheticTrace::stats() const {
  GeneratedStats s;
  s.files = files_.size();
  s.duration_sec = profile_.gen.duration_sec;
  std::set<std::size_t> owners;
  for (const auto& f : files_)
    owners.insert(static_cast<std::size_t>(f.attr(Attr::kOwnerId)));
  s.owners = owners.size();
  for (const auto& op : ops_) {
    if (op.is_read) {
      ++s.reads;
      s.read_bytes += op.bytes;
    } else {
      ++s.writes;
      s.write_bytes += op.bytes;
    }
  }
  return s;
}

std::vector<FileMetadata> SyntheticTrace::make_insert_stream(
    std::size_t n, std::uint64_t seed) const {
  util::Rng rng(seed);
  util::ZipfGenerator cluster_pop(clusters_.size(), 0.8);
  std::vector<FileMetadata> out;
  out.reserve(n);
  FileId next_id = files_.empty() ? 1 : files_.back().id + 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = cluster_pop.sample(rng);
    FileMetadata f =
        synth_file(next_id++, /*subtrace=*/tif_, ci, 900000 + i, rng);
    // Late arrivals: created at/after the end of the original trace.
    const double dur = profile_.gen.duration_sec;
    f.set_attr(Attr::kCreationTime, dur + static_cast<double>(i));
    f.set_attr(Attr::kModificationTime, dur + static_cast<double>(i));
    f.set_attr(Attr::kAccessTime, dur + static_cast<double>(i));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace smartstore::trace
