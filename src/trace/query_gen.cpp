#include "trace/query_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "la/stats.h"

namespace smartstore::trace {

using metadata::Attr;
using metadata::AttrSubset;
using metadata::FileMetadata;
using metadata::kNumAttrs;

const char* distribution_name(QueryDistribution d) {
  switch (d) {
    case QueryDistribution::kUniform: return "Uniform";
    case QueryDistribution::kGauss: return "Gauss";
    case QueryDistribution::kZipf: return "Zipf";
  }
  return "?";
}

QueryGenerator::QueryGenerator(const SyntheticTrace& trace,
                               QueryDistribution dist, std::uint64_t seed)
    : trace_(trace), dist_(dist), rng_(seed),
      zipf_(std::max<std::size_t>(1, trace.files().size()), 1.0) {
  min_.assign(kNumAttrs, 0.0);
  max_.assign(kNumAttrs, 0.0);
  mean_.assign(kNumAttrs, 0.0);
  stdev_.assign(kNumAttrs, 0.0);
  p5_.assign(kNumAttrs, 0.0);
  p95_.assign(kNumAttrs, 0.0);
  const auto& files = trace.files();
  if (files.empty()) return;
  for (std::size_t d = 0; d < kNumAttrs; ++d) {
    la::Vector col(files.size());
    for (std::size_t i = 0; i < files.size(); ++i)
      col[i] = files[i].attrs[d];
    const auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    min_[d] = *mn;
    max_[d] = *mx;
    mean_[d] = la::mean(col);
    stdev_[d] = la::stdev(col);
    p5_[d] = la::percentile(col, 5.0);
    p95_[d] = la::percentile(col, 95.0);
  }
}

const FileMetadata* QueryGenerator::pick_anchor() {
  if (trace_.files().empty()) return nullptr;
  if (dist_ == QueryDistribution::kGauss) {
    // Gauss anchors uniformly over files (queries normally distributed
    // around the data manifold, no popularity skew).
    return &trace_.files()[rng_.uniform_u64(trace_.files().size())];
  }
  return &trace_.files()[zipf_.sample(rng_)];
}

double QueryGenerator::draw_coord(Attr a, const FileMetadata* anchor) {
  const std::size_t d = static_cast<std::size_t>(a);
  switch (dist_) {
    case QueryDistribution::kUniform:
      return p5_[d] < p95_[d] ? rng_.uniform(p5_[d], p95_[d]) : p5_[d];
    case QueryDistribution::kGauss: {
      // Normally distributed around a data point: wider wobble than Zipf
      // (no popularity concentration), but still data-aligned.
      const double base = anchor ? anchor->attrs[d] : mean_[d];
      const double wobble = 0.3 * std::max(1e-9, stdev_[d]);
      return std::clamp(rng_.gauss(base, wobble), min_[d], max_[d]);
    }
    case QueryDistribution::kZipf: {
      // Near a popular file's coordinate, with small Gaussian wobble.
      const double base = anchor ? anchor->attrs[d] : mean_[d];
      const double wobble = 0.02 * std::max(1e-9, stdev_[d]);
      return std::clamp(rng_.gauss(base, wobble), min_[d], max_[d]);
    }
  }
  return mean_[d];
}

metadata::PointQuery QueryGenerator::gen_point(double exist_prob) {
  metadata::PointQuery q;
  if (!trace_.files().empty() && rng_.bernoulli(exist_prob)) {
    q.filename = trace_.files()[zipf_.sample(rng_)].name;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "/nonexistent/ghost%016llx.tmp",
                  static_cast<unsigned long long>(rng_.next_u64()));
    q.filename = buf;
  }
  return q;
}

metadata::RangeQuery QueryGenerator::gen_range(const AttrSubset& dims,
                                               double width_frac) {
  metadata::RangeQuery q;
  q.dims = dims;
  q.lo.resize(dims.size());
  q.hi.resize(dims.size());
  const FileMetadata* anchor =
      dist_ == QueryDistribution::kUniform ? nullptr : pick_anchor();
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const std::size_t d = static_cast<std::size_t>(dims[i]);
    const double center = draw_coord(dims[i], anchor);
    const double spread = std::max(1e-9, max_[d] - min_[d]);
    const double half = 0.5 * width_frac * spread;
    q.lo[i] = center - half;
    q.hi[i] = center + half;
  }
  return q;
}

metadata::TopKQuery QueryGenerator::gen_topk(const AttrSubset& dims,
                                             std::size_t k) {
  metadata::TopKQuery q;
  q.dims = dims;
  q.k = k;
  q.point.resize(dims.size());
  const FileMetadata* anchor =
      dist_ == QueryDistribution::kUniform ? nullptr : pick_anchor();
  for (std::size_t i = 0; i < dims.size(); ++i)
    q.point[i] = draw_coord(dims[i], anchor);
  return q;
}

}  // namespace smartstore::trace
