#include "rtree/mbr.h"

#include <algorithm>
#include <cassert>

namespace smartstore::rtree {

Mbr::Mbr(la::Vector lo, la::Vector hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.size() == hi_.size());
#ifndef NDEBUG
  for (std::size_t d = 0; d < lo_.size(); ++d) assert(lo_[d] <= hi_[d]);
#endif
}

void Mbr::expand(const la::Vector& point) {
  if (!valid()) {
    lo_ = point;
    hi_ = point;
    return;
  }
  assert(point.size() == dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], point[d]);
    hi_[d] = std::max(hi_[d], point[d]);
  }
}

void Mbr::expand(const Mbr& other) {
  if (!other.valid()) return;
  if (!valid()) {
    *this = other;
    return;
  }
  assert(other.dims() == dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

bool Mbr::contains(const la::Vector& point) const {
  if (!valid()) return false;
  assert(point.size() == dims());
  for (std::size_t d = 0; d < dims(); ++d)
    if (point[d] < lo_[d] || point[d] > hi_[d]) return false;
  return true;
}

bool Mbr::contains(const Mbr& other) const {
  if (!valid() || !other.valid()) return false;
  for (std::size_t d = 0; d < dims(); ++d)
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  return true;
}

bool Mbr::intersects(const Mbr& other) const {
  if (!valid() || !other.valid()) return false;
  assert(other.dims() == dims());
  for (std::size_t d = 0; d < dims(); ++d)
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  return true;
}

double Mbr::area() const {
  if (!valid()) return 0.0;
  double a = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) a *= (hi_[d] - lo_[d]);
  return a;
}

double Mbr::margin() const {
  if (!valid()) return 0.0;
  double m = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) m += (hi_[d] - lo_[d]);
  return m;
}

double Mbr::enlargement(const Mbr& other) const {
  Mbr u = *this;
  u.expand(other);
  return u.area() - area();
}

double Mbr::min_squared_distance(const la::Vector& point) const {
  assert(valid() && point.size() == dims());
  double acc = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    double delta = 0.0;
    if (point[d] < lo_[d]) {
      delta = lo_[d] - point[d];
    } else if (point[d] > hi_[d]) {
      delta = point[d] - hi_[d];
    }
    acc += delta * delta;
  }
  return acc;
}

double Mbr::max_squared_distance(const la::Vector& point) const {
  assert(valid() && point.size() == dims());
  double acc = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double dlo = std::abs(point[d] - lo_[d]);
    const double dhi = std::abs(point[d] - hi_[d]);
    const double m = std::max(dlo, dhi);
    acc += m * m;
  }
  return acc;
}

la::Vector Mbr::center() const {
  la::Vector c(dims());
  for (std::size_t d = 0; d < dims(); ++d) c[d] = 0.5 * (lo_[d] + hi_[d]);
  return c;
}

Mbr merge(const Mbr& a, const Mbr& b) {
  Mbr out = a;
  out.expand(b);
  return out;
}

}  // namespace smartstore::rtree
