// Minimum Bounding Rectangles (Guttman, SIGMOD'84).
//
// An MBR is the minimal multi-dimensional interval approximation of the
// enclosed data: per dimension, the lower and upper bound (Section 2.2 of
// the paper). Every semantic R-tree node carries one; range queries test
// box intersection and top-k queries use the point-to-MBR minimum distance
// as the branch-and-bound lower bound.
#pragma once

#include <cstddef>

#include "la/matrix.h"

namespace smartstore::rtree {

class Mbr {
 public:
  Mbr() = default;  ///< empty (invalid until expanded)

  /// Degenerate MBR covering a single point.
  explicit Mbr(const la::Vector& point) : lo_(point), hi_(point) {}
  Mbr(la::Vector lo, la::Vector hi);

  bool valid() const { return !lo_.empty(); }
  std::size_t dims() const { return lo_.size(); }

  const la::Vector& lo() const { return lo_; }
  const la::Vector& hi() const { return hi_; }

  /// Grows to cover the point.
  void expand(const la::Vector& point);
  /// Grows to cover another MBR.
  void expand(const Mbr& other);

  bool contains(const la::Vector& point) const;
  bool contains(const Mbr& other) const;
  bool intersects(const Mbr& other) const;

  /// Product of side lengths (Guttman's area heuristic).
  double area() const;
  /// Sum of side lengths (margin).
  double margin() const;
  /// Area increase needed to include `other` (insertion heuristic).
  double enlargement(const Mbr& other) const;

  /// Smallest squared Euclidean distance from `point` to any point of the
  /// box; 0 when inside. Lower bound for NN search.
  double min_squared_distance(const la::Vector& point) const;
  /// Largest squared Euclidean distance from `point` to a corner of the
  /// box; upper bound used to seed MaxD.
  double max_squared_distance(const la::Vector& point) const;

  la::Vector center() const;

  std::size_t byte_size() const {
    return sizeof(*this) + (lo_.capacity() + hi_.capacity()) * sizeof(double);
  }

  bool operator==(const Mbr&) const = default;

 private:
  la::Vector lo_, hi_;
};

/// The union MBR of two boxes.
Mbr merge(const Mbr& a, const Mbr& b);

}  // namespace smartstore::rtree
