// Classical dynamic R-tree (Guttman, SIGMOD'84) over points with uint64
// payloads.
//
// Used directly as the non-semantic centralized baseline ("R-tree" in
// Table 4 / Figure 7 of the paper) and reused by the semantic R-tree for
// the node split/merge algorithms (Section 4.1 — "the operations of
// splitting and merging nodes in semantic R-tree follow the classical
// algorithms in R-tree").
//
// Configuration mirrors the paper's parameters: fanout M (max children per
// node) and m <= M/2 (min fill; underflowing nodes are dissolved and their
// entries reinserted — Guttman's CondenseTree).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rtree/mbr.h"

namespace smartstore::rtree {

struct RTreeStats {
  std::size_t leaf_nodes = 0;
  std::size_t internal_nodes = 0;
  std::size_t entries = 0;
  std::size_t height = 0;
  /// Logical storage: leaf entries as points (dims doubles + payload),
  /// internal entries as boxes — what a space-conscious implementation
  /// would serialize (Figure 7 accounting).
  std::size_t bytes = 0;
  /// Nodes touched by the most recent query (search-cost accounting for the
  /// latency model).
  std::size_t last_nodes_visited = 0;
  /// Leaf entries compared by the most recent query (record-level work).
  std::size_t last_leaf_entries = 0;
};

class RTree {
 public:
  using Payload = std::uint64_t;

  /// `max_fanout` = M; `min_fill` = m (clamped to [1, M/2]).
  explicit RTree(std::size_t dims, std::size_t max_fanout = 16,
                 std::size_t min_fill = 0);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t dims() const { return dims_; }
  std::size_t max_fanout() const { return max_fanout_; }
  std::size_t min_fill() const { return min_fill_; }

  void insert(const la::Vector& point, Payload payload);

  /// Removes one entry with this exact point and payload; returns true if
  /// found. Underflowing nodes are condensed (entries reinserted).
  bool erase(const la::Vector& point, Payload payload);

  /// All payloads whose points fall inside the box (inclusive).
  std::vector<Payload> range_query(const Mbr& box) const;

  /// The k nearest entries to `point` (squared Euclidean), closest first.
  /// Implements best-first branch-and-bound; the pruning bound corresponds
  /// to the paper's MaxD threshold.
  std::vector<std::pair<double, Payload>> knn(const la::Vector& point,
                                              std::size_t k) const;

  /// Visits every (point, payload) entry.
  void for_each(
      const std::function<void(const la::Vector&, Payload)>& fn) const;

  /// Root MBR (invalid when empty).
  Mbr bounds() const;

  RTreeStats stats() const;

  /// Structural invariants: MBR containment, fanout bounds, uniform leaf
  /// depth, entry count. For property tests.
  bool check_invariants() const;

 private:
  struct Node;
  struct Entry {
    Mbr box;                       // degenerate box for leaf entries
    Payload payload = 0;           // leaf only
    std::unique_ptr<Node> child;   // internal only
  };
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Entry> entries;
    Mbr box() const;
  };

  Node* choose_leaf(Node& node, const Mbr& box,
                    std::vector<Node*>& path) const;
  /// Splits an overflowing node in place (Guttman's quadratic split);
  /// returns the new sibling.
  std::unique_ptr<Node> split_node(Node& node);
  bool erase_recursive(Node& node, const la::Vector& point, Payload payload,
                       std::vector<Entry>& orphans);
  /// Collects the leaf-level entries of a dissolved subtree for
  /// reinsertion (CondenseTree).
  static void collect_leaf_entries(Node& node, std::vector<Entry>& out);

  void range_query_node(const Node& node, const Mbr& box,
                        std::vector<Payload>& out,
                        std::size_t& visited) const;

  bool check_node(const Node& node, std::size_t depth, std::size_t leaf_depth,
                  std::size_t& entries) const;
  static std::size_t leaf_depth_of(const Node& node);

  std::size_t dims_;
  std::size_t max_fanout_;
  std::size_t min_fill_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  mutable std::size_t last_nodes_visited_ = 0;
  mutable std::size_t last_leaf_entries_ = 0;
};

}  // namespace smartstore::rtree
