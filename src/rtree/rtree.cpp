#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace smartstore::rtree {

Mbr RTree::Node::box() const {
  Mbr b;
  for (const auto& e : entries) b.expand(e.box);
  return b;
}

RTree::RTree(std::size_t dims, std::size_t max_fanout, std::size_t min_fill)
    : dims_(dims), max_fanout_(std::max<std::size_t>(4, max_fanout)) {
  // Paper Section 4.1: m <= M/2, tunable per workload. Default M/3, a
  // common choice balancing split frequency against occupancy.
  const std::size_t half = max_fanout_ / 2;
  min_fill_ = min_fill == 0 ? std::max<std::size_t>(1, max_fanout_ / 3)
                            : std::min(min_fill, half);
  if (min_fill_ == 0) min_fill_ = 1;
}

RTree::Node* RTree::choose_leaf(Node& node, const Mbr& box,
                                std::vector<Node*>& path) const {
  Node* n = &node;
  for (;;) {
    path.push_back(n);
    if (n->leaf) return n;
    // Least enlargement, ties by smaller area (Guttman's ChooseLeaf).
    Entry* best = nullptr;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (auto& e : n->entries) {
      const double enl = e.box.enlargement(box);
      const double area = e.box.area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = &e;
        best_enl = enl;
        best_area = area;
      }
    }
    assert(best);
    n = best->child.get();
  }
}

std::unique_ptr<RTree::Node> RTree::split_node(Node& node) {
  // Guttman's quadratic split: pick the pair of entries wasting the most
  // area as seeds, then greedily assign the rest by strongest preference.
  auto& es = node.entries;
  const std::size_t n = es.size();
  assert(n > max_fanout_);

  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double waste = merge(es[i].box, es[j].box).area() -
                           es[i].box.area() - es[j].box.area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<Entry> pool;
  pool.reserve(n);
  for (auto& e : es) pool.push_back(std::move(e));
  es.clear();

  auto sibling = std::make_unique<Node>(node.leaf);
  Mbr box_a(pool[seed_a].box), box_b(pool[seed_b].box);
  node.entries.push_back(std::move(pool[seed_a]));
  sibling->entries.push_back(std::move(pool[seed_b]));

  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  std::size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group needs every remaining entry to reach min fill, dump them.
    if (node.entries.size() + remaining == min_fill_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          box_a.expand(pool[i].box);
          node.entries.push_back(std::move(pool[i]));
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (sibling->entries.size() + remaining == min_fill_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          box_b.expand(pool[i].box);
          sibling->entries.push_back(std::move(pool[i]));
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: the entry with the greatest preference difference.
    std::size_t pick = n;
    double best_diff = -1.0;
    double d_a_pick = 0, d_b_pick = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = box_a.enlargement(pool[i].box);
      const double db = box_b.enlargement(pool[i].box);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    assert(pick < n);
    bool to_a;
    if (d_a_pick != d_b_pick) {
      to_a = d_a_pick < d_b_pick;
    } else if (box_a.area() != box_b.area()) {
      to_a = box_a.area() < box_b.area();
    } else {
      to_a = node.entries.size() <= sibling->entries.size();
    }
    if (to_a) {
      box_a.expand(pool[pick].box);
      node.entries.push_back(std::move(pool[pick]));
    } else {
      box_b.expand(pool[pick].box);
      sibling->entries.push_back(std::move(pool[pick]));
    }
    assigned[pick] = true;
    --remaining;
  }
  return sibling;
}

void RTree::insert(const la::Vector& point, Payload payload) {
  assert(point.size() == dims_);
  if (!root_) root_ = std::make_unique<Node>(/*leaf=*/true);

  std::vector<Node*> path;
  Node* leaf = choose_leaf(*root_, Mbr(point), path);
  Entry e;
  e.box = Mbr(point);
  e.payload = payload;
  leaf->entries.push_back(std::move(e));
  ++size_;

  std::unique_ptr<Node> pending;  // split-off sibling of path[i]
  for (std::size_t i = path.size(); i-- > 0;) {
    Node* node = path[i];
    if (node->entries.size() > max_fanout_) pending = split_node(*node);
    if (i > 0) {
      Node* parent = path[i - 1];
      for (auto& pe : parent->entries) {
        if (pe.child.get() == node) {
          pe.box = node->box();
          break;
        }
      }
      if (pending) {
        Entry se;
        se.box = pending->box();
        se.child = std::move(pending);
        parent->entries.push_back(std::move(se));
      }
    } else if (pending) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      Entry e1;
      e1.box = root_->box();
      Entry e2;
      e2.box = pending->box();
      e2.child = std::move(pending);
      e1.child = std::move(root_);
      new_root->entries.push_back(std::move(e1));
      new_root->entries.push_back(std::move(e2));
      root_ = std::move(new_root);
    }
  }
}

void RTree::collect_leaf_entries(Node& node, std::vector<Entry>& out) {
  if (node.leaf) {
    for (auto& e : node.entries) out.push_back(std::move(e));
    return;
  }
  for (auto& e : node.entries) collect_leaf_entries(*e.child, out);
}

bool RTree::erase_recursive(Node& node, const la::Vector& point,
                            Payload payload, std::vector<Entry>& orphans) {
  if (node.leaf) {
    for (auto it = node.entries.begin(); it != node.entries.end(); ++it) {
      if (it->payload == payload && it->box.lo() == point) {
        node.entries.erase(it);
        return true;
      }
    }
    return false;
  }
  for (auto it = node.entries.begin(); it != node.entries.end(); ++it) {
    if (!it->box.contains(point)) continue;
    if (!erase_recursive(*it->child, point, payload, orphans)) continue;
    if (it->child->entries.size() < min_fill_) {
      // CondenseTree: dissolve the underfull child, reinsert its entries.
      collect_leaf_entries(*it->child, orphans);
      node.entries.erase(it);
    } else {
      it->box = it->child->box();
    }
    return true;
  }
  return false;
}

bool RTree::erase(const la::Vector& point, Payload payload) {
  assert(point.size() == dims_);
  if (!root_) return false;
  std::vector<Entry> orphans;
  if (!erase_recursive(*root_, point, payload, orphans)) return false;
  --size_;

  // Shrink the root: an internal root with one child collapses; an empty
  // root (possible when CondenseTree dissolved its last child) is dropped.
  while (root_ && !root_->leaf && root_->entries.size() == 1) {
    root_ = std::move(root_->entries.front().child);
  }
  if (root_ && root_->entries.empty()) root_.reset();

  size_ -= orphans.size();  // insert() will count them again
  for (auto& o : orphans) insert(o.box.lo(), o.payload);
  return true;
}

void RTree::range_query_node(const Node& node, const Mbr& box,
                             std::vector<Payload>& out,
                             std::size_t& visited) const {
  ++visited;
  if (node.leaf) last_leaf_entries_ += node.entries.size();
  for (const auto& e : node.entries) {
    if (!box.intersects(e.box)) continue;
    if (node.leaf) {
      out.push_back(e.payload);
    } else {
      range_query_node(*e.child, box, out, visited);
    }
  }
}

std::vector<RTree::Payload> RTree::range_query(const Mbr& box) const {
  std::vector<Payload> out;
  last_nodes_visited_ = 0;
  last_leaf_entries_ = 0;
  if (root_) range_query_node(*root_, box, out, last_nodes_visited_);
  return out;
}

std::vector<std::pair<double, RTree::Payload>> RTree::knn(
    const la::Vector& point, std::size_t k) const {
  std::vector<std::pair<double, Payload>> result;
  last_nodes_visited_ = 0;
  last_leaf_entries_ = 0;
  if (!root_ || k == 0) return result;

  struct QueueItem {
    double dist;
    const Node* node;      // nullptr for a leaf entry
    Payload payload;
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, root_.get(), 0});

  // MaxD (paper Section 3.3.2): the distance of the current k-th best;
  // subtrees farther than MaxD cannot improve the result.
  double max_d = std::numeric_limits<double>::infinity();
  while (!pq.empty()) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.dist > max_d) break;
    if (item.node == nullptr) {
      result.emplace_back(item.dist, item.payload);
      if (result.size() == k) break;
      continue;
    }
    ++last_nodes_visited_;
    if (item.node->leaf) last_leaf_entries_ += item.node->entries.size();
    for (const auto& e : item.node->entries) {
      const double d = e.box.min_squared_distance(point);
      if (d > max_d) continue;
      if (item.node->leaf) {
        pq.push({d, nullptr, e.payload});
      } else {
        pq.push({d, e.child.get(), 0});
      }
    }
  }
  return result;
}

void RTree::for_each(
    const std::function<void(const la::Vector&, Payload)>& fn) const {
  std::function<void(const Node&)> walk = [&](const Node& n) {
    for (const auto& e : n.entries) {
      if (n.leaf) {
        fn(e.box.lo(), e.payload);
      } else {
        walk(*e.child);
      }
    }
  };
  if (root_) walk(*root_);
}

Mbr RTree::bounds() const { return root_ ? root_->box() : Mbr(); }

std::size_t RTree::leaf_depth_of(const Node& node) {
  std::size_t d = 1;
  const Node* n = &node;
  while (!n->leaf) {
    n = n->entries.front().child.get();
    ++d;
  }
  return d;
}

RTreeStats RTree::stats() const {
  RTreeStats s;
  s.last_nodes_visited = last_nodes_visited_;
  s.last_leaf_entries = last_leaf_entries_;
  std::function<void(const Node&, std::size_t)> walk = [&](const Node& n,
                                                           std::size_t depth) {
    s.height = std::max(s.height, depth);
    s.bytes += sizeof(Node);
    for (const auto& e : n.entries) {
      if (n.leaf) {
        // Leaf entries are points: dims coordinates plus the payload.
        s.bytes += dims_ * sizeof(double) + sizeof(Payload);
        ++s.entries;
      } else {
        // Internal entries carry a full bounding box and a child pointer.
        s.bytes += 2 * dims_ * sizeof(double) + sizeof(void*);
        walk(*e.child, depth + 1);
      }
    }
    if (n.leaf) {
      ++s.leaf_nodes;
    } else {
      ++s.internal_nodes;
    }
  };
  if (root_) walk(*root_, 1);
  return s;
}

bool RTree::check_node(const Node& node, std::size_t depth,
                       std::size_t leaf_depth, std::size_t& entries) const {
  const bool is_root = depth == 1;
  if (node.entries.size() > max_fanout_) return false;
  if (!is_root && node.entries.size() < min_fill_) return false;
  if (node.leaf) {
    if (depth != leaf_depth) return false;
    entries += node.entries.size();
    return true;
  }
  for (const auto& e : node.entries) {
    if (!e.child) return false;
    // Parent entry box must exactly bound the child contents.
    if (!(e.box == e.child->box())) return false;
    if (!check_node(*e.child, depth + 1, leaf_depth, entries)) return false;
  }
  return true;
}

bool RTree::check_invariants() const {
  if (!root_) return size_ == 0;
  std::size_t entries = 0;
  if (!check_node(*root_, 1, leaf_depth_of(*root_), entries)) return false;
  return entries == size_;
}

}  // namespace smartstore::rtree
