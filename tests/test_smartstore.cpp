// End-to-end tests for the SmartStore facade: build, queries vs ground
// truth, versioning/staleness behavior, reconfiguration, failure injection,
// automatic configuration, space accounting.
#include "core/smartstore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/ground_truth.h"
#include "trace/query_gen.h"
#include "trace/synth.h"

namespace smartstore::core {
namespace {

using metadata::Attr;
using metadata::AttrSubset;
using metadata::FileId;
using metadata::FileMetadata;

trace::SyntheticTrace small_trace(std::uint64_t seed = 42) {
  return trace::SyntheticTrace::generate(trace::msn_profile(), /*tif=*/1,
                                         seed, /*downscale=*/5);  // 2500 files
}

Config small_config() {
  Config cfg;
  cfg.num_units = 20;
  cfg.fanout = 5;
  cfg.seed = 7;
  cfg.max_groups_per_query = 4;  // "a single or a minimal number of groups"
  return cfg;
}

class SmartStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = small_trace();
    store_ = std::make_unique<SmartStore>(small_config());
    store_->build(trace_.files());
  }

  trace::SyntheticTrace trace_{};
  std::unique_ptr<SmartStore> store_;
};

TEST_F(SmartStoreTest, BuildDistributesAllFiles) {
  EXPECT_EQ(store_->total_files(), trace_.files().size());
  std::size_t sum = 0;
  for (const auto& u : store_->units()) sum += u.file_count();
  EXPECT_EQ(sum, trace_.files().size());
  EXPECT_TRUE(store_->check_invariants());
}

TEST_F(SmartStoreTest, PlacementIsApproximatelyBalanced) {
  const std::size_t avg = trace_.files().size() / store_->units().size();
  for (const auto& u : store_->units()) {
    EXPECT_LE(u.file_count(), avg * 2 + 10);
  }
}

TEST_F(SmartStoreTest, PointQueryFindsExistingFiles) {
  int found = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& f = trace_.files()[i * 17 % trace_.files().size()];
    const auto res =
        store_->point_query({f.name}, Routing::kOffline, 0.0);
    if (res.found) {
      ++found;
      EXPECT_EQ(res.id, f.id);
    }
  }
  EXPECT_GE(found, 95);  // tiny slack for bloom-driven misrouting
}

TEST_F(SmartStoreTest, PointQueryOnlineFindsExistingFiles) {
  int found = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto& f = trace_.files()[i * 31 % trace_.files().size()];
    if (store_->point_query({f.name}, Routing::kOnline, 0.0).found) ++found;
  }
  EXPECT_GE(found, 58);  // online search is exact modulo nothing
}

TEST_F(SmartStoreTest, PointQueryRejectsAbsentFiles) {
  for (int i = 0; i < 50; ++i) {
    const auto res = store_->point_query(
        {"/definitely/not/there/" + std::to_string(i)}, Routing::kOffline,
        0.0);
    EXPECT_FALSE(res.found);
  }
}

TEST_F(SmartStoreTest, OnlineRangeQueryIsExact) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 3);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime});
  for (int i = 0; i < 20; ++i) {
    const auto q = gen.gen_range(dims, 0.1);
    auto res = store_->range_query(q, Routing::kOnline, 0.0);
    auto truth = brute_force_range(trace_.files(), q);
    std::sort(res.ids.begin(), res.ids.end());
    std::sort(truth.begin(), truth.end());
    EXPECT_EQ(res.ids, truth) << "query " << i;
  }
}

TEST_F(SmartStoreTest, OnlineTopKIsExact) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kGauss, 4);
  const AttrSubset dims = AttrSubset::all();
  for (int i = 0; i < 15; ++i) {
    const auto q = gen.gen_topk(dims, 8);
    const auto res = store_->topk_query(q, Routing::kOnline, 0.0);
    const auto truth =
        brute_force_topk(trace_.files(), store_->standardizer(), q);
    ASSERT_EQ(res.hits.size(), truth.size());
    for (std::size_t r = 0; r < truth.size(); ++r)
      EXPECT_NEAR(res.hits[r].first, truth[r].first, 1e-9) << "rank " << r;
  }
}

TEST_F(SmartStoreTest, OfflineComplexQueriesHaveHighRecall) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 5);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime,
                         Attr::kReadBytes});
  double range_recall = 0, topk_recall = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const auto rq = gen.gen_range(dims, 0.05);
    range_recall += recall(brute_force_range(trace_.files(), rq),
                           store_->range_query(rq, Routing::kOffline, 0.0).ids);
    const auto tq = gen.gen_topk(dims, 8);
    std::vector<FileId> truth_ids;
    for (const auto& [d, id] :
         brute_force_topk(trace_.files(), store_->standardizer(), tq))
      truth_ids.push_back(id);
    topk_recall += recall(
        truth_ids, store_->topk_query(tq, Routing::kOffline, 0.0).ids());
  }
  EXPECT_GT(range_recall / n, 0.75);
  EXPECT_GT(topk_recall / n, 0.8);
}

TEST_F(SmartStoreTest, OfflineCheaperThanOnline) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 6);
  const AttrSubset dims = AttrSubset::all();
  std::uint64_t online_msgs = 0, offline_msgs = 0;
  for (int i = 0; i < 25; ++i) {
    const auto q = gen.gen_topk(dims, 8);
    offline_msgs += store_->topk_query(q, Routing::kOffline, 0.0).stats.messages;
    online_msgs += store_->topk_query(q, Routing::kOnline, 0.0).stats.messages;
  }
  EXPECT_LT(offline_msgs, online_msgs);
}

TEST_F(SmartStoreTest, InsertedFilesBecomeVisibleThroughVersions) {
  // Insert enough that most groups seal versions (version_ratio = 4);
  // files in sealed versions are visible to off-line point queries, files
  // still pending are the paper's staleness false negatives.
  const auto extra = trace_.make_insert_stream(200, 99);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const auto st = store_->insert_file(extra[i], static_cast<double>(i));
    EXPECT_EQ(st.routing_hops, 0);
  }
  EXPECT_EQ(store_->total_files(), trace_.files().size() + extra.size());
  EXPECT_TRUE(store_->check_invariants());
  int found = 0;
  for (const auto& f : extra)
    if (store_->point_query({f.name}, Routing::kOffline, 0.0).found) ++found;
  EXPECT_GE(found, 120);  // the sealed majority

  // On-line queries see everything immediately (fresh index-unit filters).
  int online_found = 0;
  for (std::size_t i = 0; i < 50; ++i)
    if (store_->point_query({extra[i].name}, Routing::kOnline, 0.0).found)
      ++online_found;
  EXPECT_EQ(online_found, 50);

  // After reconfiguration (full replica sync) everything is visible.
  store_->reconfigure();
  found = 0;
  for (const auto& f : extra)
    if (store_->point_query({f.name}, Routing::kOffline, 0.0).found) ++found;
  EXPECT_EQ(found, 200);
}

TEST_F(SmartStoreTest, DeleteFileRemoves) {
  const auto& f = trace_.files()[10];
  const auto st = store_->delete_file(f.name, 0.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(store_->total_files(), trace_.files().size() - 1);
  EXPECT_FALSE(store_->point_query({f.name}, Routing::kOffline, 0.0).found);
  EXPECT_FALSE(store_->delete_file(f.name, 0.0).has_value());
  EXPECT_TRUE(store_->check_invariants());
}

TEST_F(SmartStoreTest, VersioningBeatsNoVersioningUnderChurn) {
  // Two stores, same data; one without versioning. Interleave inserts and
  // top-k queries aimed at the inserted files; versioning must win.
  Config no_ver = small_config();
  no_ver.versioning_enabled = false;
  SmartStore plain(no_ver);
  plain.build(trace_.files());

  const auto extra = trace_.make_insert_stream(300, 5);
  auto all_files = trace_.files();

  double recall_ver = 0, recall_plain = 0;
  int queries = 0;
  for (std::size_t i = 0; i < extra.size(); ++i) {
    store_->insert_file(extra[i], static_cast<double>(i));
    plain.insert_file(extra[i], static_cast<double>(i));
    all_files.push_back(extra[i]);
    if (i % 10 != 9) continue;
    // Query near the latest insert.
    metadata::TopKQuery q;
    q.dims = AttrSubset::all();
    q.point = extra[i].full_vector();
    q.k = 8;
    std::vector<FileId> truth;
    for (const auto& [d, id] :
         brute_force_topk(all_files, store_->standardizer(), q))
      truth.push_back(id);
    recall_ver += recall(truth,
                         store_->topk_query(q, Routing::kOffline, 0.0).ids());
    recall_plain += recall(
        truth, plain.topk_query(q, Routing::kOffline, 0.0).ids());
    ++queries;
  }
  recall_ver /= queries;
  recall_plain /= queries;
  EXPECT_GE(recall_ver, recall_plain);
  EXPECT_GT(recall_ver, 0.8);
}

TEST_F(SmartStoreTest, ReconfigureClearsVersions) {
  const auto extra = trace_.make_insert_stream(50, 6);
  for (std::size_t i = 0; i < extra.size(); ++i)
    store_->insert_file(extra[i], static_cast<double>(i));
  store_->reconfigure();
  EXPECT_DOUBLE_EQ(store_->avg_version_bytes_per_group(), 0.0);
  // Queries still work after reconfiguration.
  int found = 0;
  for (const auto& f : extra)
    if (store_->point_query({f.name}, Routing::kOffline, 0.0).found) ++found;
  EXPECT_GE(found, 48);
}

TEST_F(SmartStoreTest, SpaceAccountingNonTrivial) {
  const auto s = store_->avg_unit_space();
  EXPECT_GT(s.metadata_bytes, 0u);
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_GT(s.replica_bytes, 0u);
  EXPECT_GT(s.total(), s.metadata_bytes);
}

TEST_F(SmartStoreTest, RoutingHopsMostlyZeroForOperationMix) {
  // Figure 8 measures the routing distance over the full operation mix of
  // a metadata workload: point lookups and inserts (the vast majority of
  // metadata ops, both 1-group) plus a complex-query tail, which is how
  // "87.3%-90.6% of operations are served by one group" arises.
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 8);
  const auto inserts = trace_.make_insert_stream(20, 812);
  int zero = 0, total = 0;
  std::size_t next_insert = 0;
  for (int i = 0; i < 200; ++i) {
    int hops;
    if (i % 10 == 9 && next_insert < inserts.size()) {
      hops = store_->insert_file(inserts[next_insert++], 0.0).routing_hops;
    } else if (i % 10 == 7) {
      const auto q = gen.gen_topk(AttrSubset::all(), 8);
      hops = store_->topk_query(q, Routing::kOffline, 0.0).stats.routing_hops;
    } else if (i % 10 == 8) {
      const auto q = gen.gen_range(
          AttrSubset({Attr::kFileSize, Attr::kModificationTime}), 0.03);
      hops = store_->range_query(q, Routing::kOffline, 0.0).stats.routing_hops;
    } else {
      const auto q = gen.gen_point(0.9);
      const auto res = store_->point_query(q, Routing::kOffline, 0.0);
      hops = res.stats.groups_visited <= 1 ? 0 : 1;
    }
    ++total;
    if (hops == 0) ++zero;
  }
  EXPECT_GT(static_cast<double>(zero) / total, 0.75);
}

TEST_F(SmartStoreTest, AddStorageUnitKeepsInvariants) {
  const UnitId nu = store_->add_storage_unit();
  EXPECT_EQ(nu, small_config().num_units);
  EXPECT_TRUE(store_->check_invariants());
  // New inserts can land anywhere; the system keeps functioning.
  const auto extra = trace_.make_insert_stream(30, 7);
  for (const auto& f : extra) store_->insert_file(f, 0.0);
  EXPECT_TRUE(store_->check_invariants());
}

TEST_F(SmartStoreTest, RemoveStorageUnitRedistributesFiles) {
  const std::size_t before = store_->total_files();
  store_->remove_storage_unit(3);
  EXPECT_EQ(store_->total_files(), before);  // files redistributed, not lost
  EXPECT_TRUE(store_->check_invariants());
  EXPECT_EQ(store_->units()[3].file_count(), 0u);
}

TEST_F(SmartStoreTest, NodeFailureMarksQueries) {
  // Crash half the units; some queries must report failure rather than
  // silently succeeding.
  for (UnitId u = 0; u < 10; ++u) store_->cluster().set_node_alive(u, false);
  int failed = 0;
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kUniform, 9);
  for (int i = 0; i < 40; ++i) {
    const auto q = gen.gen_range(AttrSubset::all(), 0.2);
    if (store_->range_query(q, Routing::kOffline, 0.0).stats.failed) ++failed;
  }
  EXPECT_GT(failed, 0);
  for (UnitId u = 0; u < 10; ++u) store_->cluster().set_node_alive(u, true);
}

TEST_F(SmartStoreTest, AutoconfigureKeepsDistinctVariants) {
  std::vector<AttrSubset> candidates{
      AttrSubset({Attr::kFileSize}),
      AttrSubset({Attr::kFileSize, Attr::kCreationTime}),
      AttrSubset({Attr::kReadBytes, Attr::kWriteBytes,
                  Attr::kAccessFrequency}),
  };
  const std::size_t kept = store_->autoconfigure(candidates);
  EXPECT_EQ(kept, store_->variants().size());
  for (const auto& v : store_->variants()) {
    EXPECT_TRUE(v.tree.built());
    // Kept variants must differ in index-unit count by > threshold.
    const double diff =
        std::abs(static_cast<double>(v.tree.num_nodes()) -
                 static_cast<double>(store_->tree().num_nodes()));
    EXPECT_GT(diff, store_->config().autoconfig_threshold *
                        static_cast<double>(store_->tree().num_nodes()));
  }
  EXPECT_TRUE(store_->check_invariants());
}

TEST_F(SmartStoreTest, LatencyAndMessagesArePositive) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kGauss, 10);
  const auto q = gen.gen_topk(AttrSubset::all(), 8);
  const auto res = store_->topk_query(q, Routing::kOffline, 0.0);
  EXPECT_GT(res.stats.latency_s, 0.0);
  EXPECT_GT(res.stats.messages, 0u);
  EXPECT_GE(res.stats.groups_visited, 1u);
}

TEST(SmartStoreEdge, EmptyStoreQueries) {
  Config cfg;
  cfg.num_units = 4;
  SmartStore store(cfg);
  store.build({});
  EXPECT_EQ(store.total_files(), 0u);
  const auto res = store.point_query({"/nothing"}, Routing::kOffline, 0.0);
  EXPECT_FALSE(res.found);
  metadata::RangeQuery rq;
  rq.dims = AttrSubset({Attr::kFileSize});
  rq.lo = {0};
  rq.hi = {100};
  EXPECT_TRUE(store.range_query(rq, Routing::kOffline, 0.0).ids.empty());
}

TEST(SmartStoreEdge, MoreUnitsThanFiles) {
  Config cfg;
  cfg.num_units = 16;
  cfg.fanout = 4;
  auto t = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 3,
                                           /*downscale=*/2000);  // ~6 files
  SmartStore store(cfg);
  store.build(t.files());
  EXPECT_TRUE(store.check_invariants());
  for (const auto& f : t.files())
    EXPECT_TRUE(store.point_query({f.name}, Routing::kOnline, 0.0).found);
}

}  // namespace
}  // namespace smartstore::core
