// Crash-injection suite for the concurrent checkpoint protocol.
//
// Three attack angles on the same contract — recover() always lands on a
// consistent prefix of the acknowledged history, with no acknowledged
// write lost and nothing applied twice:
//
//   1. a deterministic fault-point sweep: one fixed workload (inserts,
//      a fuzzy checkpoint with mutations interleaved between its phases,
//      a stop-the-world checkpoint) is killed at *every* snapshot section
//      boundary, atomic-publish stage, WAL block boundary and rebase
//      stage it passes, and recovery is verified from each crash state;
//   2. a randomized oracle fuzz: insert/delete/reconfigure/checkpoint/
//      crash/recover against an in-memory name-set oracle, with on-line
//      point-query recall checked after every recovery;
//   3. per-section snapshot corruption: one flipped bit in each
//      CRC-protected section (and in each stored CRC) must fail the load
//      cleanly with PersistError — no crash, no partially loaded store.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "persist/delta_checkpoint.h"
#include "persist/fault.h"
#include "persist/recovery.h"
#include "persist/segment.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "persist/wal_shard.h"
#include "trace/synth.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace smartstore::persist {
namespace {

using core::Config;
using core::Routing;
using core::SmartStore;
using metadata::AttrSubset;
using metadata::FileMetadata;

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("smartstore_crash_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::set<std::string> unit_names(const SmartStore& s) {
  std::set<std::string> out;
  for (const auto& u : s.units())
    for (const auto& f : u.files()) out.insert(f.name);
  return out;
}

// ---- 1. deterministic fault-point sweep -------------------------------------

struct ScenarioResult {
  std::vector<std::string> insert_order;  ///< every attempted insert
  std::set<std::string> acked;            ///< durable when last op returned
  std::set<std::string> base;             ///< population from build()
  bool completed = false;
};

/// One fixed workload covering every write path: WAL-logged inserts
/// (group commit 2), a fuzzy checkpoint with inserts interleaved between
/// freeze / snapshot / rebase, a stop-the-world checkpoint against the
/// live writer, and a trailing batch. Single-threaded so the fault-point
/// sequence is deterministic. The durable baseline (build + first
/// checkpoint) is written with faults disarmed — a crash before any
/// checkpoint ever completed has nothing to recover from, by design —
/// then `arm_at` arms the injector for the workload (0 = stay disarmed
/// and reset the pass counter, for enumeration). An injected fault
/// abandons the WAL handle, freezing the on-disk bytes exactly as the
/// crash left them, and returns completed = false.
ScenarioResult run_crash_scenario(const std::string& dir,
                                  std::uint64_t arm_at) {
  ScenarioResult res;

  fault_disarm();
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                                  /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  res.base = unit_names(store);

  const auto stream = tr.make_insert_stream(13, 77);
  auto wal = std::make_unique<WalWriter>(wal_path(dir), /*group_commit=*/2);
  checkpoint(store, dir, wal.get());

  // Arm (or just reset the pass counter) only now: the baseline above is
  // not part of the sweep, so the dry run's enumeration must start here.
  if (arm_at > 0) {
    fault_arm(arm_at);
  } else {
    fault_disarm();
  }
  try {
    auto logged_insert = [&](const FileMetadata& f) {
      res.insert_order.push_back(f.name);
      wal->log_insert(f);  // may auto-commit (and crash) at the batch size
      store.insert_file(f, 0.0);
      const std::size_t durable =
          res.insert_order.size() - wal->pending_records();
      res.acked.clear();
      for (std::size_t i = 0; i < durable; ++i)
        res.acked.insert(res.insert_order[i]);
    };

    for (int i = 0; i < 4; ++i) logged_insert(stream[i]);

    // Fuzzy checkpoint, phase by phase, with mutations in the gaps — the
    // copy-on-write machinery and every publish stage are on the path.
    wal->commit();
    const WalFence fence{wal->generation(), wal->committed_records(), true};
    const std::size_t fence_bytes = wal->committed_bytes();
    store.begin_checkpoint();
    logged_insert(stream[4]);
    logged_insert(stream[5]);
    save_snapshot_frozen(store, snapshot_path(dir), fence);
    logged_insert(stream[6]);
    wal->rebase(static_cast<std::size_t>(fence.records), fence_bytes);
    store.end_checkpoint();

    logged_insert(stream[7]);
    logged_insert(stream[8]);
    checkpoint(store, dir, wal.get());
    for (int i = 9; i < 13; ++i) logged_insert(stream[i]);
    wal->commit();
    res.acked.clear();
    for (const auto& name : res.insert_order) res.acked.insert(name);
    res.completed = true;
  } catch (const FaultInjected&) {
    wal->abandon();  // the process died: nothing may touch the files now
  }
  return res;
}

TEST(CrashInjection, RecoveryIsConsistentAtEveryFaultPoint) {
  // Dry run: enumerate the workload's fault points.
  std::uint64_t total = 0;
  {
    const std::string dir = temp_dir("sweep_dry");
    const ScenarioResult dry = run_crash_scenario(dir, 0);
    ASSERT_TRUE(dry.completed);
    total = fault_points_passed();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total, 20u) << "the workload should cross many crash boundaries";

  for (std::uint64_t k = 1; k <= total; ++k) {
    const std::string dir = temp_dir("sweep_" + std::to_string(k));
    const ScenarioResult r = run_crash_scenario(dir, k);
    const std::string where = fault_last_fired();
    fault_disarm();
    ASSERT_FALSE(r.completed) << "fault " << k << " never fired";

    RecoveryResult rec;
    ASSERT_NO_THROW(rec = recover(dir))
        << "recovery failed after crash at point " << k << " (" << where
        << ")";
    ASSERT_TRUE(rec.store) << where;
    EXPECT_TRUE(rec.store->check_invariants()) << where;

    // Consistent prefix: recovered = base + the first j attempted inserts,
    // for some j covering at least every acknowledged one.
    const std::set<std::string> got = unit_names(*rec.store);
    std::set<std::string> expect = r.base;
    std::size_t j = 0;
    for (; j < r.insert_order.size(); ++j) {
      if (!got.count(r.insert_order[j])) break;
      expect.insert(r.insert_order[j]);
    }
    for (std::size_t t = j; t < r.insert_order.size(); ++t) {
      EXPECT_FALSE(got.count(r.insert_order[t]))
          << "non-prefix survivor " << r.insert_order[t] << " at point " << k
          << " (" << where << ")";
    }
    EXPECT_EQ(got, expect) << "crash at point " << k << " (" << where << ")";
    EXPECT_GE(j, r.acked.size())
        << "lost an acknowledged write at point " << k << " (" << where
        << ")";
    std::filesystem::remove_all(dir);
  }
}

// ---- 1b. sharded-WAL fault-point sweep --------------------------------------

/// One logged insert's coordinates in the sharded log: which shard it
/// landed on and its position in that shard's record order.
struct ShardedInsert {
  std::string name;
  std::size_t shard = 0;
  std::uint64_t idx = 0;  ///< records logged to that shard before this one
};

struct ShardedScenarioResult {
  std::vector<ShardedInsert> inserts;        ///< every attempted insert
  std::vector<std::uint64_t> committed;      ///< per-shard durable records
                                             ///< when the crash hit
  std::set<std::string> base;
  bool completed = false;
};

/// The sharded counterpart of run_crash_scenario: WAL-hooked inserts over
/// per-unit shards (group commit 2), a fuzzy checkpoint driven through the
/// store's frozen section with inserts between its phases (per-shard
/// frontier fence, concurrent-protocol rebase), a stop-the-world sharded
/// checkpoint, and a trailing batch. Single-threaded so the fault-point
/// sequence is deterministic — the multi-writer interleavings are
/// test_concurrent's job; every crash boundary is the same either way.
ShardedScenarioResult run_sharded_crash_scenario(const std::string& dir,
                                                 std::uint64_t arm_at) {
  ShardedScenarioResult res;

  fault_disarm();
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                                  /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  res.base = unit_names(store);

  const auto stream = tr.make_insert_stream(13, 77);
  auto wal = std::make_unique<ShardedWal>(dir, cfg.num_units,
                                          /*group_commit=*/2);
  checkpoint(store, dir, *wal);

  // Durable frontiers are tracked CUMULATIVELY per shard: rebases and
  // resets drop durable prefixes out of committed_records(), so the
  // running `dropped` baseline is added back — `committed[s] > idx` then
  // compares in the same coordinate system as the cumulative `logged`
  // indices. The snapshots are taken only at points the scenario knows to
  // be quiescent; a crash leaves the previous (conservative) value, which
  // can only under-count acked writes, never over-count.
  std::vector<std::uint64_t> logged(cfg.num_units, 0);
  std::vector<std::uint64_t> dropped(cfg.num_units, 0);
  auto snapshot_committed = [&] {
    res.committed.assign(wal->num_shards(), 0);
    for (std::size_t s = 0; s < wal->num_shards(); ++s)
      res.committed[s] =
          (s < dropped.size() ? dropped[s] : 0) + wal->committed_records(s);
  };

  if (arm_at > 0) {
    fault_arm(arm_at);
  } else {
    fault_disarm();
  }
  try {
    auto logged_insert = [&](const FileMetadata& f) {
      store.insert_file(f, 0.0, [&](core::UnitId target) {
        // Record the (shard, index) BEFORE the log append: if the append's
        // group commit crashes, this attempt is on file but never counted
        // durable (committed_records stays behind it).
        if (target >= logged.size()) logged.resize(target + 1, 0);
        res.inserts.push_back({f.name, target, logged[target]++});
        return wal->log_insert(target, f);
      });
      snapshot_committed();
    };

    for (int i = 0; i < 4; ++i) logged_insert(stream[i]);

    // Fuzzy checkpoint, phase by phase, mirroring the background
    // protocol: frontier fence inside the frozen section, mutations in
    // the gaps, per-shard rebase at the end.
    WalFence fence;
    std::vector<std::size_t> fence_bytes;
    store.begin_checkpoint([&] { fence = wal->frontier(&fence_bytes); });
    snapshot_committed();
    logged_insert(stream[4]);
    logged_insert(stream[5]);
    save_snapshot_frozen(store, snapshot_path(dir), fence);
    logged_insert(stream[6]);
    wal->rebase_to(fence, fence_bytes);
    for (const ShardFence& f : fence.shards) {
      if (f.shard >= dropped.size()) dropped.resize(f.shard + 1, 0);
      dropped[f.shard] += f.records;
    }
    store.end_checkpoint();
    snapshot_committed();

    logged_insert(stream[7]);
    logged_insert(stream[8]);
    checkpoint(store, dir, *wal);
    // The stop-the-world checkpoint committed and subsumed everything.
    for (std::size_t s = 0; s < logged.size(); ++s) dropped[s] = logged[s];
    snapshot_committed();
    for (int i = 9; i < 13; ++i) logged_insert(stream[i]);
    wal->commit_all();
    snapshot_committed();
    res.completed = true;
  } catch (const FaultInjected&) {
    wal->abandon();  // the process died: nothing may touch the files now
  }
  return res;
}

TEST(CrashInjection, ShardedRecoveryLosesNoAckedWriteAtAnyFaultPoint) {
  // Dry run: enumerate the workload's fault points.
  std::uint64_t total = 0;
  {
    const std::string dir = temp_dir("shard_dry");
    const ShardedScenarioResult dry = run_sharded_crash_scenario(dir, 0);
    ASSERT_TRUE(dry.completed);
    total = fault_points_passed();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total, 25u) << "the sharded workload should cross many "
                           "commit/rebase/reset boundaries";

  for (std::uint64_t k = 1; k <= total; ++k) {
    const std::string dir = temp_dir("shard_" + std::to_string(k));
    const ShardedScenarioResult r = run_sharded_crash_scenario(dir, k);
    const std::string where = fault_last_fired();
    fault_disarm();
    ASSERT_FALSE(r.completed) << "fault " << k << " never fired";

    RecoveryResult rec;
    ASSERT_NO_THROW(rec = recover(dir))
        << "recovery failed after crash at point " << k << " (" << where
        << ")";
    ASSERT_TRUE(rec.store) << where;
    EXPECT_TRUE(rec.store->check_invariants()) << where;
    const std::set<std::string> got = unit_names(*rec.store);

    // 1. No acknowledged write lost: an insert whose shard's durable
    //    frontier passed it at crash time must survive recovery's
    //    sequence-ordered merge replay.
    for (const ShardedInsert& ins : r.inserts) {
      const bool acked = ins.shard < r.committed.size() &&
                         r.committed[ins.shard] > ins.idx;
      if (acked) {
        EXPECT_TRUE(got.count(ins.name))
            << "lost acked write " << ins.name << " (shard " << ins.shard
            << ") at point " << k << " (" << where << ")";
      }
    }
    // 2. Nothing invented: every survivor is base population or an
    //    attempted insert (applied exactly once — set semantics plus the
    //    fence make a double replay a duplicate-id invariant failure).
    std::set<std::string> attempted;
    for (const ShardedInsert& ins : r.inserts) attempted.insert(ins.name);
    for (const auto& name : got) {
      EXPECT_TRUE(r.base.count(name) || attempted.count(name))
          << "unexpected survivor " << name << " at point " << k << " ("
          << where << ")";
    }
    // 3. Per-shard prefix: within one shard, survivors of this workload's
    //    inserts form a prefix of that shard's log order (a torn tail
    //    only ever drops a suffix).
    std::map<std::size_t, std::vector<const ShardedInsert*>> by_shard;
    for (const ShardedInsert& ins : r.inserts)
      by_shard[ins.shard].push_back(&ins);
    for (const auto& [shard, list] : by_shard) {
      bool missing_seen = false;
      for (const ShardedInsert* ins : list) {
        const bool present = got.count(ins->name) > 0;
        if (!present) missing_seen = true;
        EXPECT_FALSE(present && missing_seen)
            << "non-prefix survivor " << ins->name << " in shard " << shard
            << " at point " << k << " (" << where << ")";
      }
    }
    std::filesystem::remove_all(dir);
  }
}

// ---- 1c. incremental-checkpoint fault-point sweep ---------------------------

/// The delta-engine counterpart of run_sharded_crash_scenario: WAL-hooked
/// inserts over per-unit shards, two delta cuts growing a chain on the
/// baseline fold's base image, a compaction fold over that chain, a third
/// cut onto the fresh base, and a quiesced full checkpoint over the delta
/// state — so the sweep crosses every segment-append, manifest-publish,
/// cut-rebase, fold-rebase, prune and manifest-clear boundary the
/// incremental engine added. Single-threaded for a deterministic fault
/// sequence. The disarmed baseline fold gives every crash state a
/// manifest to recover from.
ShardedScenarioResult run_delta_crash_scenario(const std::string& dir,
                                               std::uint64_t arm_at) {
  ShardedScenarioResult res;

  fault_disarm();
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                                  /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  res.base = unit_names(store);

  const auto stream = tr.make_insert_stream(15, 77);
  auto wal = std::make_unique<ShardedWal>(dir, cfg.num_units,
                                          /*group_commit=*/2);
  DeltaEngine engine(store, *wal, dir);
  engine.fold();  // baseline: ckpt/base-1.bin + an empty-chain manifest

  std::vector<std::uint64_t> logged(cfg.num_units, 0);
  std::vector<std::uint64_t> dropped(cfg.num_units, 0);
  auto snapshot_committed = [&] {
    res.committed.assign(wal->num_shards(), 0);
    for (std::size_t s = 0; s < wal->num_shards(); ++s)
      res.committed[s] =
          (s < dropped.size() ? dropped[s] : 0) + wal->committed_records(s);
  };
  // A successful cut/fold committed every shard at its barrier (and a
  // quiesced checkpoint at its fence), so everything logged so far is
  // durable regardless of which shards the rebase touched.
  auto mark_all_durable = [&] {
    for (std::size_t s = 0; s < logged.size(); ++s) dropped[s] = logged[s];
    for (std::size_t s = 0; s < wal->num_shards(); ++s) {
      if (s >= dropped.size()) dropped.resize(s + 1, 0);
    }
    res.committed.assign(std::max(dropped.size(), wal->num_shards()), 0);
    for (std::size_t s = 0; s < res.committed.size(); ++s)
      res.committed[s] = s < dropped.size() ? dropped[s] : 0;
  };

  if (arm_at > 0) {
    fault_arm(arm_at);
  } else {
    fault_disarm();
  }
  try {
    auto logged_insert = [&](const FileMetadata& f) {
      store.insert_file(f, 0.0, [&](core::UnitId target) {
        if (target >= logged.size()) logged.resize(target + 1, 0);
        res.inserts.push_back({f.name, target, logged[target]++});
        return wal->log_insert(target, f);
      });
      snapshot_committed();
    };

    for (int i = 0; i < 4; ++i) logged_insert(stream[i]);
    engine.cut();  // cut #1: segment appends + manifest + rebase
    mark_all_durable();

    for (int i = 4; i < 7; ++i) logged_insert(stream[i]);
    engine.cut();  // cut #2: the chain grows
    mark_all_durable();

    for (int i = 7; i < 9; ++i) logged_insert(stream[i]);
    engine.fold();  // compaction: fresh base, empty chain, prune
    mark_all_durable();

    for (int i = 9; i < 11; ++i) logged_insert(stream[i]);
    engine.cut();  // cut #3: first cut onto the folded base
    mark_all_durable();

    for (int i = 11; i < 13; ++i) logged_insert(stream[i]);
    // Quiesced full checkpoint over a directory holding delta state: the
    // manifest must be cleared AFTER the image publish and BEFORE the WAL
    // reset (the checkpoint:pre-ckpt-clear window).
    checkpoint(store, dir, *wal);
    mark_all_durable();

    for (int i = 13; i < 15; ++i) logged_insert(stream[i]);
    wal->commit_all();
    snapshot_committed();
    res.completed = true;
  } catch (const FaultInjected&) {
    wal->abandon();  // the process died: nothing may touch the files now
  }
  return res;
}

TEST(CrashInjection, DeltaCheckpointLosesNoAckedWriteAtAnyFaultPoint) {
  // Dry run: enumerate the workload's fault points.
  std::uint64_t total = 0;
  {
    const std::string dir = temp_dir("delta_dry");
    const ShardedScenarioResult dry = run_delta_crash_scenario(dir, 0);
    ASSERT_TRUE(dry.completed);
    total = fault_points_passed();
    std::filesystem::remove_all(dir);
  }
  ASSERT_GT(total, 40u) << "the delta workload should cross many segment/"
                           "manifest/rebase/prune boundaries";

  std::set<std::string> fired;
  for (std::uint64_t k = 1; k <= total; ++k) {
    const std::string dir = temp_dir("delta_" + std::to_string(k));
    const ShardedScenarioResult r = run_delta_crash_scenario(dir, k);
    const std::string where = fault_last_fired();
    fault_disarm();
    ASSERT_FALSE(r.completed) << "fault " << k << " never fired";
    fired.insert(where);

    RecoveryResult rec;
    ASSERT_NO_THROW(rec = recover(dir))
        << "recovery failed after crash at point " << k << " (" << where
        << ")";
    ASSERT_TRUE(rec.store) << where;
    EXPECT_TRUE(rec.store->check_invariants()) << where;
    const std::set<std::string> got = unit_names(*rec.store);

    // 1. No acknowledged write lost: every record under a shard's durable
    //    frontier at crash time must survive base + delta chain + tail.
    for (const ShardedInsert& ins : r.inserts) {
      const bool acked = ins.shard < r.committed.size() &&
                         r.committed[ins.shard] > ins.idx;
      if (acked) {
        EXPECT_TRUE(got.count(ins.name))
            << "lost acked write " << ins.name << " (shard " << ins.shard
            << ") at point " << k << " (" << where << ")";
      }
    }
    // 2. Nothing applied twice: a folded delta replayed over a base that
    //    already contains it would duplicate ids — total_files() counts
    //    records, unit_names() dedups, so equality proves single-apply
    //    (check_invariants also cross-checks ids).
    EXPECT_EQ(rec.store->total_files(), got.size())
        << "double-applied record at point " << k << " (" << where << ")";
    // 3. Nothing invented.
    std::set<std::string> attempted;
    for (const ShardedInsert& ins : r.inserts) attempted.insert(ins.name);
    for (const auto& name : got) {
      EXPECT_TRUE(r.base.count(name) || attempted.count(name))
          << "unexpected survivor " << name << " at point " << k << " ("
          << where << ")";
    }
    // 4. Per-shard prefix: survivors form a prefix of each shard's order.
    std::map<std::size_t, std::vector<const ShardedInsert*>> by_shard;
    for (const ShardedInsert& ins : r.inserts)
      by_shard[ins.shard].push_back(&ins);
    for (const auto& [shard, list] : by_shard) {
      bool missing_seen = false;
      for (const ShardedInsert* ins : list) {
        const bool present = got.count(ins->name) > 0;
        if (!present) missing_seen = true;
        EXPECT_FALSE(present && missing_seen)
            << "non-prefix survivor " << ins->name << " in shard " << shard
            << " at point " << k << " (" << where << ")";
      }
    }
    std::filesystem::remove_all(dir);
  }

  // The sweep must actually have crossed every publish stage the
  // incremental engine added — a silently skipped stage would void the
  // whole exercise.
  for (const char* point :
       {"ckpt:manifest:torn-temp", "ckpt:manifest:pre-rename",
        "ckpt:manifest:pre-dirsync", "delta:seg:pre-truncate",
        "delta:seg:pre-append", "delta:seg:pre-sync", "delta:pre-rebase",
        "compact:pre-rebase", "compact:pre-prune",
        "checkpoint:pre-ckpt-clear"}) {
    EXPECT_TRUE(fired.count(point)) << "sweep never crossed " << point;
  }
}

// ---- 1d. single-log -> sharded migration ------------------------------------

TEST(CrashInjection, ShardedCheckpointFencesLeftoverLegacyLog) {
  // A PR-3-era deployment carries wal.bin; the first sharded checkpoint
  // over that directory must FENCE the legacy records inside the snapshot
  // it publishes — a crash between the snapshot rename and the legacy
  // log's emptying would otherwise replay them over an image that already
  // contains them (duplicate records, the exact double-apply the fence
  // protocol exists to prevent).
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                                  /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  const auto stream = tr.make_insert_stream(4, 77);

  // Builds the legacy-era directory: quiesced single-log checkpoint, then
  // four committed wal.bin records the snapshot does not contain.
  const std::string dir = temp_dir("legacy_migrate");
  auto make_legacy_dir = [&] {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SmartStore base(cfg);
    base.build(tr.files());
    auto lw = std::make_unique<WalWriter>(wal_path(dir), /*group_commit=*/2);
    checkpoint(base, dir, lw.get());
    for (const auto& f : stream) {
      lw->log_insert(f);
      base.insert_file(f, 0.0);
    }
    lw->commit();
  };

  // Sweep the sharded checkpoint's fault points until the classic window
  // fires (snapshot published, logs not yet emptied), resetting the
  // directory between attempts so every try crosses the same boundaries.
  bool hit_window = false;
  std::set<std::string> before;
  for (std::uint64_t k = 1; k <= 64 && !hit_window; ++k) {
    fault_disarm();
    make_legacy_dir();
    auto rec = recover(dir);  // replays the 4 legacy records
    ASSERT_EQ(rec.wal_records, 4u);
    before = unit_names(*rec.store);
    ShardedWal wal(dir, cfg.num_units, /*group_commit=*/2);
    fault_arm(k);
    try {
      checkpoint(*rec.store, dir, wal);
      fault_disarm();
      break;  // ran out of fault points without reaching the window
    } catch (const FaultInjected&) {
      hit_window = fault_last_fired() == "checkpoint:pre-wal-reset";
      wal.abandon();
    }
  }
  fault_disarm();
  ASSERT_TRUE(hit_window) << "sweep never reached checkpoint:pre-wal-reset";

  // Recovery from the window: the snapshot's fence must suppress the
  // legacy records it already contains — same population, no duplicates.
  const RecoveryResult after = recover(dir);
  ASSERT_TRUE(after.store);
  EXPECT_TRUE(after.store->check_invariants());
  EXPECT_EQ(after.wal_records, 0u);
  EXPECT_EQ(after.wal_fenced, 4u);
  EXPECT_EQ(unit_names(*after.store), before);
  EXPECT_EQ(after.store->total_files(), before.size());
  std::filesystem::remove_all(dir);
}

// ---- 2. randomized oracle fuzz ----------------------------------------------

TEST(CrashOracle, RandomizedMutationsCrashesAndRecoveriesMatchOracle) {
  fault_disarm();
  const std::string dir = temp_dir("oracle");
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                                  /*downscale=*/50);
  Config cfg;
  cfg.num_units = 8;
  cfg.seed = 7;
  auto store = std::make_unique<SmartStore>(cfg);
  store->build(tr.files());

  std::set<std::string> oracle = unit_names(*store);
  std::vector<std::string> live_names(oracle.begin(), oracle.end());

  checkpoint(*store, dir);
  auto wal = std::make_unique<WalWriter>(wal_path(dir), /*group_commit=*/3);

  const auto pool = tr.make_insert_stream(400, 123);
  std::size_t cursor = 0;
  util::Rng rng(2024);
  std::size_t crashes = 0, checkpoints = 0;

  auto verify_against_oracle = [&](const SmartStore& s) {
    ASSERT_EQ(unit_names(s), oracle);
    ASSERT_TRUE(s.check_invariants());
    ASSERT_EQ(s.total_files(), oracle.size());
  };

  for (int step = 0; step < 240; ++step) {
    const double r = rng.uniform();
    if (r < 0.55 && cursor < pool.size()) {
      const FileMetadata& f = pool[cursor++];
      wal->log_insert(f);
      store->insert_file(f, 0.0);
      oracle.insert(f.name);
      live_names.push_back(f.name);
    } else if (r < 0.72 && !live_names.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_u64(live_names.size()));
      const std::string name = live_names[pick];
      live_names.erase(live_names.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      if (oracle.count(name)) {
        ASSERT_TRUE(store->erase_file(name)) << name;
        wal->log_remove(name);
        oracle.erase(name);
      }
    } else if (r < 0.77) {
      wal->log_add_unit();
      store->add_storage_unit();
    } else if (r < 0.80) {
      // Remove a random active unit, keeping a quorum alive.
      std::vector<core::UnitId> active;
      for (core::UnitId u = 0; u < store->units().size(); ++u)
        if (store->unit_active(u)) active.push_back(u);
      if (active.size() > 5) {
        const core::UnitId u = active[static_cast<std::size_t>(
            rng.uniform_u64(active.size()))];
        wal->log_remove_unit(u);
        store->remove_storage_unit(u);
      }
    } else if (r < 0.84) {
      const std::vector<AttrSubset> cands = {
          AttrSubset::from_mask(0x7u), AttrSubset::from_mask(0x1Fu)};
      wal->log_autoconfigure(cands);
      store->autoconfigure(cands);
    } else if (r < 0.92) {
      // Fuzzy checkpoint with a mutation landing mid-snapshot (COW path).
      wal->commit();
      const WalFence fence{wal->generation(), wal->committed_records(), true};
      store->begin_checkpoint();
      if (cursor < pool.size()) {
        const FileMetadata& f = pool[cursor++];
        wal->log_insert(f);
        store->insert_file(f, 0.0);
        oracle.insert(f.name);
        live_names.push_back(f.name);
      }
      save_snapshot_frozen(*store, snapshot_path(dir), fence);
      wal->rebase(static_cast<std::size_t>(fence.records));
      store->end_checkpoint();
      ++checkpoints;
    } else {
      // Simulated crash at a commit boundary, then recovery.
      wal->commit();
      wal.reset();
      store.reset();
      RecoveryResult rec = recover(dir);
      store = std::move(rec.store);
      wal = std::make_unique<WalWriter>(wal_path(dir), /*group_commit=*/3);
      ++crashes;
      verify_against_oracle(*store);

      // On-line point routing is exact: every oracle member must resolve.
      std::size_t probes = 0;
      for (const auto& name : oracle) {
        if (++probes > 15) break;
        const auto res = store->point_query({name}, Routing::kOnline, 0.0);
        EXPECT_TRUE(res.found) << name << " lost after crash " << crashes;
      }
    }
  }

  // Final crash + recovery + full comparison.
  wal->commit();
  wal.reset();
  store.reset();
  RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  verify_against_oracle(*rec.store);
  EXPECT_GE(crashes, 1u);
  EXPECT_GE(checkpoints, 1u);
  std::filesystem::remove_all(dir);
}

// ---- 3. per-section snapshot corruption -------------------------------------

struct SectionSpan {
  std::uint32_t id = 0;
  std::size_t payload_off = 0;
  std::size_t payload_len = 0;
  std::size_t crc_off = 0;
};

std::vector<SectionSpan> parse_sections(const std::vector<std::uint8_t>& b) {
  util::BinaryReader r(b);
  r.skip(sizeof(kSnapshotMagic));
  r.read_u32();  // format version
  const std::uint32_t nsections = r.read_u32();
  std::vector<SectionSpan> out;
  for (std::uint32_t i = 0; i < nsections; ++i) {
    SectionSpan s;
    s.id = r.read_u32();
    s.payload_len = static_cast<std::size_t>(r.read_u64());
    s.payload_off = r.position();
    r.skip(s.payload_len);
    s.crc_off = r.position();
    r.read_u32();
    out.push_back(s);
  }
  return out;
}

TEST(SnapshotCorruption, OneFlippedBitInAnySectionFailsLoadCleanly) {
  fault_disarm();
  const std::string dir = temp_dir("corrupt_sections");
  const auto tr = trace::SyntheticTrace::generate(trace::hp_profile(), 1, 42,
                                                  /*downscale=*/20);
  Config cfg;
  cfg.num_units = 8;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  // Variants + a fence so the VARIANTS and WALFENCE sections are
  // non-trivial too.
  store.autoconfigure({AttrSubset::from_mask(0x7u)});
  const std::string path = snapshot_path(dir);
  save_snapshot(store, path, WalFence{99, 3, true});

  const auto pristine = util::read_file_bytes(path);
  ASSERT_NO_THROW(load_snapshot(path));
  const auto sections = parse_sections(pristine);
  ASSERT_EQ(sections.size(), 7u);  // 6 mandatory + WALFENCE

  for (const SectionSpan& s : sections) {
    // A flipped payload bit must trip the section checksum.
    if (s.payload_len > 0) {
      auto bytes = pristine;
      bytes[s.payload_off + s.payload_len / 2] ^= 0x10;
      util::write_file_atomic(path, bytes);
      EXPECT_THROW(load_snapshot(path), PersistError)
          << "payload flip in section " << s.id;
    }
    // A flipped bit in the stored CRC itself must fail identically.
    auto bytes = pristine;
    bytes[s.crc_off] ^= 0x01;
    util::write_file_atomic(path, bytes);
    EXPECT_THROW(load_snapshot(path), PersistError)
        << "crc flip in section " << s.id;
  }

  // The pristine bytes still load: corruption detection has no side
  // effects on the on-disk image.
  util::write_file_atomic(path, pristine);
  EXPECT_NO_THROW(load_snapshot(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smartstore::persist
