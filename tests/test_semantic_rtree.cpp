// Tests for the semantic R-tree: bottom-up construction, incremental
// updates, unit admission/removal with split/merge, index-unit mapping.
#include "core/semantic_rtree.h"

#include <gtest/gtest.h>

#include <set>

#include "metadata/schema.h"
#include "util/rng.h"

namespace smartstore::core {
namespace {

using metadata::Attr;
using metadata::FileMetadata;
using metadata::kNumAttrs;

/// Builds `n_units` units, each filled with files from one of `n_clusters`
/// attribute clusters (so grouping has real structure to find).
std::vector<StorageUnit> make_units(std::size_t n_units,
                                    std::size_t n_clusters,
                                    std::size_t files_per_unit,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<la::Vector> centers;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    la::Vector v(kNumAttrs);
    for (auto& x : v) x = rng.uniform(-50, 50) * 10.0;
    centers.push_back(v);
  }
  std::vector<StorageUnit> units;
  metadata::FileId next_id = 1;
  for (std::size_t u = 0; u < n_units; ++u) {
    units.emplace_back(u, 1024, 7);
    const auto& c = centers[u % n_clusters];
    for (std::size_t i = 0; i < files_per_unit; ++i) {
      FileMetadata f;
      f.id = next_id++;
      f.name = "/u" + std::to_string(u) + "/f" + std::to_string(i);
      for (std::size_t d = 0; d < kNumAttrs; ++d)
        f.attrs[d] = c[d] + rng.gauss(0, 1.0);
      units[u].add_file(f, f.full_vector());
    }
  }
  return units;
}

SemanticRTree::BuildParams params(std::size_t fanout = 4) {
  SemanticRTree::BuildParams p;
  p.fanout = fanout;
  p.min_fill = 2;
  return p;
}

TEST(SemanticRTree, BuildProducesValidTree) {
  const auto units = make_units(12, 3, 20, 1);
  SemanticRTree t;
  t.build(units, params());
  ASSERT_TRUE(t.built());
  EXPECT_TRUE(t.check_invariants(units));
  EXPECT_GE(t.height(), 2);
  EXPECT_FALSE(t.groups().empty());
  EXPECT_FALSE(t.level_epsilons().empty());
}

TEST(SemanticRTree, GroupsRespectFanoutCap) {
  const auto units = make_units(20, 4, 10, 2);
  SemanticRTree t;
  t.build(units, params(4));
  for (std::size_t g : t.groups())
    EXPECT_LE(t.node(g).children.size(), 4u);
}

TEST(SemanticRTree, CorrelatedUnitsGroupTogether) {
  // 12 units from 3 clusters with fanout 4: each cluster's 4 units should
  // land in one group.
  const auto units = make_units(12, 3, 30, 3);
  SemanticRTree t;
  t.build(units, params(4));
  std::map<std::size_t, std::set<std::size_t>> cluster_groups;
  for (std::size_t u = 0; u < units.size(); ++u)
    cluster_groups[u % 3].insert(t.group_of_unit(u));
  for (const auto& [cluster, groups] : cluster_groups) {
    (void)cluster;
    EXPECT_EQ(groups.size(), 1u);
  }
}

TEST(SemanticRTree, RootCoversEverything) {
  const auto units = make_units(10, 2, 15, 4);
  SemanticRTree t;
  t.build(units, params());
  const IndexUnit& root = t.node(t.root_id());
  std::size_t files = 0;
  for (const auto& u : units) {
    files += u.file_count();
    EXPECT_TRUE(root.box.contains(u.box()));
  }
  EXPECT_EQ(root.file_count, files);
}

TEST(SemanticRTree, SingleUnitTree) {
  const auto units = make_units(1, 1, 5, 5);
  SemanticRTree t;
  t.build(units, params());
  ASSERT_TRUE(t.built());
  EXPECT_EQ(t.groups().size(), 1u);
  EXPECT_EQ(t.group_of_unit(0), t.root_id());
  EXPECT_TRUE(t.check_invariants(units));
}

TEST(SemanticRTree, OnFileInsertedPropagatesUp) {
  auto units = make_units(8, 2, 10, 6);
  SemanticRTree t;
  t.build(units, params());

  FileMetadata f;
  f.id = 9999;
  f.name = "/new/file";
  for (std::size_t d = 0; d < kNumAttrs; ++d) f.attrs[d] = 1e5;  // far away
  const UnitId target = 0;
  units[target].add_file(f, f.full_vector());
  t.on_file_inserted(target, f.full_vector(), f.full_vector(), f.name);

  // Every ancestor (group .. root) must now cover the point and report the
  // name as present.
  std::size_t node = t.group_of_unit(target);
  int levels = 0;
  while (node != kInvalidIndex) {
    EXPECT_TRUE(t.node(node).box.contains(f.full_vector()));
    EXPECT_TRUE(t.node(node).name_filter.may_contain(f.name));
    node = t.node(node).parent;
    ++levels;
  }
  EXPECT_GE(levels, 2);
  EXPECT_TRUE(t.check_invariants(units));
}

TEST(SemanticRTree, OnFileRemovedUpdatesCounts) {
  auto units = make_units(6, 2, 10, 7);
  SemanticRTree t;
  t.build(units, params());
  const std::size_t before = t.node(t.root_id()).file_count;
  const UnitId u = 2;
  const auto removed = units[u].remove_file(units[u].files().front().id);
  ASSERT_TRUE(removed.has_value());
  t.on_file_removed(u, removed->full_vector());
  EXPECT_EQ(t.node(t.root_id()).file_count, before - 1);
  EXPECT_TRUE(t.check_invariants(units));
}

TEST(SemanticRTree, AdmitUnitJoinsCorrelatedGroup) {
  auto units = make_units(12, 3, 20, 8);
  SemanticRTree t;
  t.build(units, params(6));

  // New unit cloned from cluster 1's distribution.
  util::Rng rng(100);
  const UnitId nu = units.size();
  units.emplace_back(nu, 1024, 7);
  const auto& twin = units[1];  // cluster 1 member
  for (std::size_t i = 0; i < 10; ++i) {
    FileMetadata f;
    f.id = 100000 + i;
    f.name = "/nu/f" + std::to_string(i);
    const auto& src = twin.files()[i % twin.file_count()];
    for (std::size_t d = 0; d < kNumAttrs; ++d)
      f.attrs[d] = src.attrs[d] + rng.gauss(0, 0.5);
    units[nu].add_file(f, f.full_vector());
  }
  const std::size_t g = t.admit_unit(units, nu);
  EXPECT_EQ(g, t.group_of_unit(nu));
  // The admitted group's existing members must all come from the new
  // unit's cluster (cluster 1): several groups of that cluster may tie at
  // similarity ~1, so exact group identity is not required.
  for (std::size_t member : t.group_members(g)) {
    if (member == nu) continue;
    EXPECT_EQ(member % 3, 1u) << "joined a group of a foreign cluster";
  }
  EXPECT_TRUE(t.check_invariants(units));
}

TEST(SemanticRTree, AdmitManyUnitsForcesSplits) {
  auto units = make_units(4, 1, 8, 9);
  SemanticRTree t;
  t.build(units, params(4));
  // Admitting 12 more similar units must split groups without breaking
  // invariants.
  util::Rng rng(200);
  for (int round = 0; round < 12; ++round) {
    const UnitId nu = units.size();
    units.emplace_back(nu, 1024, 7);
    for (int i = 0; i < 8; ++i) {
      FileMetadata f;
      f.id = 200000 + round * 100 + i;
      f.name = "/r" + std::to_string(round) + "/f" + std::to_string(i);
      for (std::size_t d = 0; d < kNumAttrs; ++d)
        f.attrs[d] = rng.uniform(-100, 100);
      units[nu].add_file(f, f.full_vector());
    }
    t.admit_unit(units, nu);
    ASSERT_TRUE(t.check_invariants(units)) << "round " << round;
  }
  for (std::size_t g : t.groups())
    EXPECT_LE(t.node(g).children.size(), 4u);
}

TEST(SemanticRTree, RemoveUnitMergesUnderfullGroups) {
  auto units = make_units(12, 3, 10, 10);
  SemanticRTree t;
  t.build(units, params(4));
  // Remove units until groups must merge.
  for (UnitId u = 0; u < 8; ++u) {
    t.remove_unit(units, u);
    ASSERT_TRUE(t.check_invariants(units)) << "after removing " << u;
  }
  // The remaining 4 units are still reachable.
  std::set<std::size_t> remaining_groups;
  for (UnitId u = 8; u < 12; ++u) {
    EXPECT_NE(t.group_of_unit(u), kInvalidIndex);
    remaining_groups.insert(t.group_of_unit(u));
  }
  EXPECT_GE(remaining_groups.size(), 1u);
}

TEST(SemanticRTree, RecomputeAllRestoresSums) {
  auto units = make_units(8, 2, 10, 11);
  SemanticRTree t;
  t.build(units, params());
  // Mutate a unit directly (bypassing on_file_inserted), then recompute.
  FileMetadata f;
  f.id = 5555;
  f.name = "/direct/f";
  for (std::size_t d = 0; d < kNumAttrs; ++d) f.attrs[d] = 3.0;
  units[3].add_file(f, f.full_vector());
  EXPECT_FALSE(t.check_invariants(units));  // counts stale
  t.recompute_all(units);
  EXPECT_TRUE(t.check_invariants(units));
}

TEST(SemanticRTree, MappingAssignsEveryIndexUnit) {
  auto units = make_units(16, 4, 10, 12);
  SemanticRTree t;
  t.build(units, params(4));
  util::Rng rng(7);
  t.map_index_units(rng);

  std::set<UnitId> used;
  std::size_t mapped = 0;
  std::vector<std::size_t> stack{t.root_id()};
  while (!stack.empty()) {
    const auto id = stack.back();
    stack.pop_back();
    const IndexUnit& n = t.node(id);
    EXPECT_NE(n.mapped_unit, kInvalidIndex);
    EXPECT_LT(n.mapped_unit, units.size());
    used.insert(n.mapped_unit);
    ++mapped;
    if (n.level > 1)
      for (auto c : n.children) stack.push_back(c);
  }
  // "In practice, the number of storage units is generally much larger
  // than that of index units, and thus each index unit can be mapped to a
  // different storage unit."
  if (mapped <= units.size()) EXPECT_EQ(used.size(), mapped);
}

TEST(SemanticRTree, RootMultiMappingCoversSubtrees) {
  auto units = make_units(16, 4, 10, 13);
  SemanticRTree t;
  t.build(units, params(4));
  util::Rng rng(8);
  t.map_index_units(rng);
  const auto& reps = t.root_replicas();
  ASSERT_FALSE(reps.empty());
  if (t.node(t.root_id()).level > 1) {
    EXPECT_EQ(reps.size(), t.node(t.root_id()).children.size());
  }
  for (UnitId r : reps) EXPECT_LT(r, units.size());
}

TEST(SemanticRTree, HostedBytesSumToTotal) {
  auto units = make_units(12, 3, 10, 14);
  SemanticRTree t;
  t.build(units, params());
  util::Rng rng(9);
  t.map_index_units(rng);
  std::size_t hosted = 0;
  for (UnitId u = 0; u < units.size(); ++u) hosted += t.hosted_bytes(u);
  EXPECT_GE(hosted, t.total_index_bytes());  // >= because of root replicas
  EXPECT_GT(t.total_index_bytes(), 0u);
}

TEST(SemanticRTree, SubsetDimsBuildDiffers) {
  auto units = make_units(16, 4, 15, 15);
  SemanticRTree full, sub;
  full.build(units, params(4));
  auto p = params(4);
  p.lsi_dims = {0, 1};  // size + ctime only
  sub.build(units, p);
  EXPECT_TRUE(full.check_invariants(units));
  EXPECT_TRUE(sub.check_invariants(units));
  // restrict_dims honors the predicate.
  la::Vector v(kNumAttrs, 1.0);
  v[0] = 42;
  EXPECT_EQ(sub.restrict_dims(v).size(), 2u);
  EXPECT_DOUBLE_EQ(sub.restrict_dims(v)[0], 42.0);
  EXPECT_EQ(full.restrict_dims(v).size(), kNumAttrs);
}

}  // namespace
}  // namespace smartstore::core
