// Tests for the synthetic trace substrate: profiles, generation,
// TIF scaling, insert streams and query generation.
#include "trace/profiles.h"
#include "trace/query_gen.h"
#include "trace/synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "la/stats.h"

namespace smartstore::trace {
namespace {

using metadata::Attr;
using metadata::AttrSubset;

TEST(Profiles, PaperTifValues) {
  EXPECT_EQ(hp_profile().paper_tif, 80);
  EXPECT_EQ(msn_profile().paper_tif, 100);
  EXPECT_EQ(eecs_profile().paper_tif, 150);
}

TEST(Profiles, HeadlineRowsPresent) {
  EXPECT_EQ(hp_profile().headline.size(), 5u);
  EXPECT_EQ(msn_profile().headline.size(), 5u);
  EXPECT_EQ(eecs_profile().headline.size(), 5u);
  // Spot-check Table 1/2/3 originals.
  EXPECT_DOUBLE_EQ(hp_profile().headline[0].original, 94.7);
  EXPECT_DOUBLE_EQ(msn_profile().headline[0].original, 1.25);
  EXPECT_DOUBLE_EQ(eecs_profile().headline[1].original, 5.1);
}

TEST(Synth, GeneratesRequestedScale) {
  auto t = SyntheticTrace::generate(msn_profile(), /*tif=*/2, 42,
                                    /*downscale=*/25);
  const std::size_t per_sub = msn_profile().gen.files_per_subtrace / 25;
  EXPECT_EQ(t.files().size(), per_sub * 2);
  EXPECT_GT(t.ops().size(), 0u);
}

TEST(Synth, DeterministicInSeed) {
  auto a = SyntheticTrace::generate(hp_profile(), 1, 7, 40);
  auto b = SyntheticTrace::generate(hp_profile(), 1, 7, 40);
  ASSERT_EQ(a.files().size(), b.files().size());
  for (std::size_t i = 0; i < a.files().size(); ++i) {
    EXPECT_EQ(a.files()[i].name, b.files()[i].name);
    EXPECT_EQ(a.files()[i].attrs, b.files()[i].attrs);
  }
}

TEST(Synth, DistinctSeedsDiffer) {
  auto a = SyntheticTrace::generate(hp_profile(), 1, 1, 40);
  auto b = SyntheticTrace::generate(hp_profile(), 1, 2, 40);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.files().size() && !any_diff; ++i)
    any_diff = a.files()[i].attrs != b.files()[i].attrs;
  EXPECT_TRUE(any_diff);
}

TEST(Synth, TifWidensWorkingSetWithSubtraceIds) {
  auto t = SyntheticTrace::generate(eecs_profile(), 3, 9, 100);
  std::set<std::string> prefixes;
  for (const auto& f : t.files())
    prefixes.insert(f.name.substr(0, f.name.find('/', 1)));
  EXPECT_EQ(prefixes.size(), 3u);  // /sub0, /sub1, /sub2
}

TEST(Synth, FilenamesUnique) {
  auto t = SyntheticTrace::generate(msn_profile(), 2, 11, 50);
  std::set<std::string> names;
  for (const auto& f : t.files()) names.insert(f.name);
  EXPECT_EQ(names.size(), t.files().size());
}

TEST(Synth, AttributeInvariants) {
  auto t = SyntheticTrace::generate(hp_profile(), 1, 13, 40);
  const double dur = hp_profile().gen.duration_sec;
  for (const auto& f : t.files()) {
    EXPECT_GE(f.attr(Attr::kFileSize), 1.0);
    const double ct = f.attr(Attr::kCreationTime);
    const double mt = f.attr(Attr::kModificationTime);
    const double at = f.attr(Attr::kAccessTime);
    EXPECT_GE(ct, 0.0);
    EXPECT_LE(ct, dur);
    EXPECT_GE(mt, ct);
    EXPECT_GE(at, mt);
    EXPECT_GE(f.attr(Attr::kReadCount), 0.0);
    EXPECT_GE(f.attr(Attr::kWriteCount), 0.0);
  }
}

TEST(Synth, OpsSortedAndBounded) {
  auto t = SyntheticTrace::generate(msn_profile(), 2, 17, 50);
  double prev = 0;
  std::set<metadata::FileId> ids;
  for (const auto& f : t.files()) ids.insert(f.id);
  for (const auto& op : t.ops()) {
    EXPECT_GE(op.time, prev);
    prev = op.time;
    EXPECT_TRUE(ids.count(op.file));
    EXPECT_GE(op.bytes, 0.0);
  }
}

TEST(Synth, StatsConsistentWithOps) {
  auto t = SyntheticTrace::generate(eecs_profile(), 1, 19, 60);
  const GeneratedStats s = t.stats();
  EXPECT_EQ(s.files, t.files().size());
  EXPECT_EQ(s.reads + s.writes, t.ops().size());
  EXPECT_GT(s.owners, 1u);
}

TEST(Synth, ReadFractionRoughlyMatchesProfile) {
  auto t = SyntheticTrace::generate(msn_profile(), 4, 21, 25);
  const GeneratedStats s = t.stats();
  const double frac = static_cast<double>(s.reads) /
                      static_cast<double>(s.reads + s.writes);
  EXPECT_NEAR(frac, msn_profile().gen.read_fraction, 0.05);
}

TEST(Synth, InsertStreamContinuesIdsAndTimes) {
  auto t = SyntheticTrace::generate(hp_profile(), 1, 23, 50);
  const auto extra = t.make_insert_stream(100, 5);
  ASSERT_EQ(extra.size(), 100u);
  const auto max_id = t.files().back().id;
  for (const auto& f : extra) {
    EXPECT_GT(f.id, max_id);
    EXPECT_GE(f.attr(Attr::kCreationTime), hp_profile().gen.duration_sec);
  }
  // Names must not collide with the original population.
  std::set<std::string> names;
  for (const auto& f : t.files()) names.insert(f.name);
  for (const auto& f : extra) EXPECT_FALSE(names.count(f.name));
}

class QueryGenTest : public ::testing::TestWithParam<QueryDistribution> {};

TEST_P(QueryGenTest, RangeQueriesWellFormed) {
  auto t = SyntheticTrace::generate(msn_profile(), 1, 29, 50);
  QueryGenerator gen(t, GetParam(), 3);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime,
                         Attr::kReadBytes});
  for (int i = 0; i < 200; ++i) {
    const auto q = gen.gen_range(dims, 0.05);
    ASSERT_EQ(q.lo.size(), dims.size());
    for (std::size_t d = 0; d < dims.size(); ++d) EXPECT_LE(q.lo[d], q.hi[d]);
  }
}

TEST_P(QueryGenTest, TopKQueriesWellFormed) {
  auto t = SyntheticTrace::generate(msn_profile(), 1, 31, 50);
  QueryGenerator gen(t, GetParam(), 5);
  const AttrSubset dims = AttrSubset::all();
  for (int i = 0; i < 200; ++i) {
    const auto q = gen.gen_topk(dims, 8);
    EXPECT_EQ(q.k, 8u);
    ASSERT_EQ(q.point.size(), dims.size());
  }
}

TEST_P(QueryGenTest, PointQueriesMixExistingAndMissing) {
  auto t = SyntheticTrace::generate(msn_profile(), 1, 37, 50);
  QueryGenerator gen(t, GetParam(), 7);
  std::set<std::string> names;
  for (const auto& f : t.files()) names.insert(f.name);
  int existing = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i)
    if (names.count(gen.gen_point(0.8).filename)) ++existing;
  EXPECT_NEAR(static_cast<double>(existing) / n, 0.8, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Distributions, QueryGenTest,
                         ::testing::Values(QueryDistribution::kUniform,
                                           QueryDistribution::kGauss,
                                           QueryDistribution::kZipf));

TEST(QueryGen, ZipfQueriesClusterNearPopularFiles) {
  auto t = SyntheticTrace::generate(msn_profile(), 1, 41, 25);
  QueryGenerator zipf(t, QueryDistribution::kZipf, 11);
  QueryGenerator uni(t, QueryDistribution::kUniform, 11);
  // Zipf queries reuse hot anchor files, so query points pile up around a
  // few coordinates; uniform points spread evenly. Compare the median
  // nearest-other-query gap on the size coordinate.
  const AttrSubset dims({Attr::kFileSize});
  la::Vector zc, uc;
  for (int i = 0; i < 300; ++i) {
    zc.push_back(zipf.gen_topk(dims, 1).point[0]);
    uc.push_back(uni.gen_topk(dims, 1).point[0]);
  }
  auto median_nn_gap = [](la::Vector v) {
    std::sort(v.begin(), v.end());
    la::Vector gaps;
    for (std::size_t i = 0; i + 1 < v.size(); ++i)
      gaps.push_back(v[i + 1] - v[i]);
    return la::median(gaps);
  };
  EXPECT_LT(median_nn_gap(zc), median_nn_gap(uc));
}

}  // namespace
}  // namespace smartstore::trace
