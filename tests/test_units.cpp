// Tests for storage units, group replicas and version deltas.
#include "core/units.h"

#include <gtest/gtest.h>

#include "metadata/schema.h"

namespace smartstore::core {
namespace {

using metadata::Attr;
using metadata::FileMetadata;
using metadata::kNumAttrs;

FileMetadata make_file(metadata::FileId id, double size, double ctime) {
  FileMetadata f;
  f.id = id;
  f.name = "/t/f" + std::to_string(id);
  f.set_attr(Attr::kFileSize, size);
  f.set_attr(Attr::kCreationTime, ctime);
  return f;
}

la::Vector coords(const FileMetadata& f) {
  return f.full_vector();  // identity "standardization" for unit tests
}

TEST(StorageUnit, AddAndFind) {
  StorageUnit u(3, 1024, 7);
  EXPECT_EQ(u.id(), 3u);
  EXPECT_TRUE(u.empty());
  const auto f = make_file(1, 100, 5);
  u.add_file(f, coords(f));
  EXPECT_EQ(u.file_count(), 1u);
  ASSERT_NE(u.find_by_name(f.name), nullptr);
  EXPECT_EQ(u.find_by_name(f.name)->id, 1u);
  ASSERT_NE(u.find_by_id(1), nullptr);
  EXPECT_EQ(u.find_by_id(1)->name, f.name);
  EXPECT_EQ(u.find_by_name("/missing"), nullptr);
}

TEST(StorageUnit, BloomTracksMembership) {
  StorageUnit u(0, 1024, 7);
  const auto f = make_file(7, 10, 1);
  u.add_file(f, coords(f));
  EXPECT_TRUE(u.name_filter().may_contain(f.name));
  u.remove_file(7);
  EXPECT_FALSE(u.name_filter().may_contain(f.name));
}

TEST(StorageUnit, RemoveSwapsIndexesCorrectly) {
  StorageUnit u(0, 1024, 7);
  for (int i = 1; i <= 5; ++i) {
    const auto f = make_file(i, 10.0 * i, i);
    u.add_file(f, coords(f));
  }
  auto removed = u.remove_file(2);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, 2u);
  EXPECT_EQ(u.file_count(), 4u);
  // Every remaining file must still be findable by name and id.
  for (int i : {1, 3, 4, 5}) {
    ASSERT_NE(u.find_by_id(i), nullptr) << i;
    EXPECT_EQ(u.find_by_id(i)->id, static_cast<metadata::FileId>(i));
    EXPECT_NE(u.find_by_name("/t/f" + std::to_string(i)), nullptr);
  }
  EXPECT_FALSE(u.remove_file(2).has_value());
}

TEST(StorageUnit, BoxCoversAllCoords) {
  StorageUnit u(0, 1024, 7);
  for (int i = 1; i <= 10; ++i) {
    const auto f = make_file(i, 10.0 * i, 100.0 - i);
    u.add_file(f, coords(f));
  }
  for (const auto& c : u.std_coords()) EXPECT_TRUE(u.box().contains(c));
}

TEST(StorageUnit, CentroidIsMeanAndUpdatesOnRemove) {
  StorageUnit u(0, 1024, 7);
  const auto f1 = make_file(1, 10, 0);
  const auto f2 = make_file(2, 30, 0);
  u.add_file(f1, coords(f1));
  u.add_file(f2, coords(f2));
  EXPECT_DOUBLE_EQ(u.centroid_raw()[static_cast<std::size_t>(Attr::kFileSize)],
                   20.0);
  u.remove_file(1);
  EXPECT_DOUBLE_EQ(u.centroid_raw()[static_cast<std::size_t>(Attr::kFileSize)],
                   30.0);
}

TEST(StorageUnit, ByteSizeGrows) {
  StorageUnit u(0, 1024, 7);
  const std::size_t before = u.byte_size();
  for (int i = 0; i < 100; ++i) {
    const auto f = make_file(i + 1, i, i);
    u.add_file(f, coords(f));
  }
  EXPECT_GT(u.byte_size(), before);
}

TEST(VersionDelta, EmptyAndByteSize) {
  VersionDelta v;
  v.added_names = bloom::BloomFilter(1024, 7);
  v.added_attr_sum.assign(kNumAttrs, 0.0);
  EXPECT_TRUE(v.empty());
  v.deleted.push_back(4);
  EXPECT_FALSE(v.empty());
  EXPECT_GT(v.byte_size(), 0u);
}

GroupReplica make_replica() {
  GroupReplica r;
  r.centroid_raw.assign(kNumAttrs, 0.0);
  r.attr_sum.assign(kNumAttrs, 0.0);
  r.centroid_raw[0] = 100;
  r.attr_sum[0] = 1000;
  r.file_count = 10;
  r.box = rtree::Mbr(la::Vector(kNumAttrs, 0.0), la::Vector(kNumAttrs, 1.0));
  r.name_filter = bloom::BloomFilter(1024, 7);
  r.name_filter.insert("/base/file");
  return r;
}

VersionDelta make_delta(double coord, const std::string& name, double sum0) {
  VersionDelta v;
  v.added_box = rtree::Mbr(la::Vector(kNumAttrs, coord));
  v.added_names = bloom::BloomFilter(1024, 7);
  v.added_names.insert(name);
  v.added_attr_sum.assign(kNumAttrs, 0.0);
  v.added_attr_sum[0] = sum0;
  v.added_count = 1;
  return v;
}

TEST(GroupReplica, EffectiveBoxUnionsVersions) {
  GroupReplica r = make_replica();
  r.versions.push_back(make_delta(5.0, "/new/a", 10));
  const rtree::Mbr without = r.effective_box(false);
  const rtree::Mbr with = r.effective_box(true);
  EXPECT_FALSE(without.contains(la::Vector(kNumAttrs, 5.0)));
  EXPECT_TRUE(with.contains(la::Vector(kNumAttrs, 5.0)));
}

TEST(GroupReplica, EffectiveCentroidBlendsVersions) {
  GroupReplica r = make_replica();  // sum0=1000, count=10 -> mean 100
  r.versions.push_back(make_delta(1.0, "/new/a", 100));  // +1 file at 100
  const la::Vector with = r.effective_centroid(true);
  EXPECT_DOUBLE_EQ(with[0], 1100.0 / 11.0);
  const la::Vector without = r.effective_centroid(false);
  EXPECT_DOUBLE_EQ(without[0], 100.0);
}

TEST(GroupReplica, NameMayContainChecksVersionsRollingBackward) {
  GroupReplica r = make_replica();
  EXPECT_TRUE(r.name_may_contain("/base/file", true));
  EXPECT_FALSE(r.name_may_contain("/new/x", true));
  r.versions.push_back(make_delta(1.0, "/new/x", 1));
  EXPECT_TRUE(r.name_may_contain("/new/x", true));
  EXPECT_FALSE(r.name_may_contain("/new/x", false));  // versions disabled
}

TEST(GroupReplica, ByteSizeIncludesVersions) {
  GroupReplica r = make_replica();
  const std::size_t base = r.byte_size();
  r.versions.push_back(make_delta(1.0, "/new/x", 1));
  EXPECT_GT(r.byte_size(), base);
  EXPECT_GT(r.versions_byte_size(), 0u);
}

}  // namespace
}  // namespace smartstore::core
