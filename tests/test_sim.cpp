// Tests for the virtual-time cluster simulation: latency accounting,
// FIFO queuing, multicast join semantics, failure injection.
#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace smartstore::sim {
namespace {

CostModel test_cost() {
  CostModel c;
  c.hop_latency_s = 1e-3;
  c.bandwidth_bytes_per_s = 1e6;
  c.per_message_cpu_s = 0;
  c.per_record_scan_s = 1e-6;
  c.per_node_visit_s = 0;
  return c;
}

TEST(Cluster, VisitAdvancesClockByWork) {
  Cluster c(4, test_cost());
  Session s = c.start_session(0, 10.0);
  s.visit(0.5);
  EXPECT_DOUBLE_EQ(s.clock(), 10.5);
  s.visit(0.0, 1000);  // 1000 records at 1us
  EXPECT_DOUBLE_EQ(s.clock(), 10.501);
}

TEST(Cluster, SendMovesAndCharges) {
  Cluster c(4, test_cost());
  Session s = c.start_session(0, 0.0);
  s.send_to(2, 1000);  // 1ms hop + 1ms transfer
  EXPECT_EQ(s.location(), 2u);
  EXPECT_DOUBLE_EQ(s.clock(), 0.002);
  EXPECT_EQ(s.hops(), 1u);
  EXPECT_EQ(s.messages(), 1u);
}

TEST(Cluster, SelfSendIsFree) {
  Cluster c(4, test_cost());
  Session s = c.start_session(1, 0.0);
  s.send_to(1);
  EXPECT_DOUBLE_EQ(s.clock(), 0.0);
  EXPECT_EQ(s.messages(), 0u);
}

TEST(Cluster, FifoQueuingSerializesSameNode) {
  Cluster c(2, test_cost());
  Session a = c.start_session(0, 0.0);
  a.visit(1.0);  // occupies node 0 until t=1
  Session b = c.start_session(0, 0.5);
  b.visit(1.0);  // must wait until t=1, finishes at t=2
  EXPECT_DOUBLE_EQ(a.clock(), 1.0);
  EXPECT_DOUBLE_EQ(b.clock(), 2.0);
}

TEST(Cluster, DifferentNodesRunInParallel) {
  Cluster c(2, test_cost());
  Session a = c.start_session(0, 0.0);
  Session b = c.start_session(1, 0.0);
  a.visit(1.0);
  b.visit(1.0);
  EXPECT_DOUBLE_EQ(a.clock(), 1.0);
  EXPECT_DOUBLE_EQ(b.clock(), 1.0);  // no interference
}

TEST(Cluster, ForkJoinTakesMaxOfBranches) {
  Cluster c(4, test_cost());
  Session s = c.start_session(0, 0.0);
  std::vector<Session> branches;
  for (NodeId n = 1; n <= 3; ++n) {
    Session b = s.fork();
    b.send_to(n, 0);          // 1ms
    b.visit(0.001 * n);       // 1..3 ms of work
    branches.push_back(b);
  }
  s.join(branches);
  EXPECT_NEAR(s.clock(), 0.001 + 0.003, 1e-12);  // slowest branch
  EXPECT_EQ(s.messages(), 3u);
}

TEST(Cluster, CountersAccumulate) {
  Cluster c(3, test_cost());
  c.reset_counters();
  Session s = c.start_session(0, 0.0);
  s.send_to(1);
  s.visit(0.1, 50);
  s.send_to(2);
  EXPECT_EQ(c.counters().messages, 2u);
  EXPECT_EQ(c.counters().hops, 2u);
  EXPECT_EQ(c.counters().node_visits, 1u);
  EXPECT_EQ(c.counters().records_scanned, 50u);
  c.reset_counters();
  EXPECT_EQ(c.counters().messages, 0u);
}

TEST(Cluster, DeadNodeFailsSessions) {
  Cluster c(3, test_cost());
  c.set_node_alive(1, false);
  Session s = c.start_session(0, 0.0);
  s.send_to(1);
  EXPECT_TRUE(s.failed());
  // Failure is sticky through joins.
  Session root = c.start_session(0, 0.0);
  Session branch = root.fork();
  branch.send_to(1);
  root.join({branch});
  EXPECT_TRUE(root.failed());
  // Revival restores service.
  c.set_node_alive(1, true);
  Session ok = c.start_session(0, 0.0);
  ok.send_to(1);
  EXPECT_FALSE(ok.failed());
}

TEST(Cluster, VisitOnDeadNodeFails) {
  Cluster c(2, test_cost());
  Session s = c.start_session(1, 0.0);
  c.set_node_alive(1, false);
  s.visit(1.0);
  EXPECT_TRUE(s.failed());
}

TEST(Cluster, AddNodeGrowsCluster) {
  Cluster c(2, test_cost());
  const NodeId n = c.add_node();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(c.size(), 3u);
  Session s = c.start_session(0, 0.0);
  s.send_to(n);
  EXPECT_FALSE(s.failed());
}

TEST(Cluster, BusyTimeTracksLoad) {
  Cluster c(2, test_cost());
  Session s = c.start_session(0, 0.0);
  s.visit(0.25);
  s.send_to(1);
  s.visit(0.5);
  EXPECT_DOUBLE_EQ(c.busy_time()[0], 0.25);
  EXPECT_DOUBLE_EQ(c.busy_time()[1], 0.5);
  c.reset_queues();
  EXPECT_DOUBLE_EQ(c.busy_time()[0], 0.0);
}

TEST(Cluster, TransferTimeScalesWithBytes) {
  CostModel cm = test_cost();
  EXPECT_DOUBLE_EQ(cm.transfer_time(0), 1e-3);
  EXPECT_DOUBLE_EQ(cm.transfer_time(1000000), 1e-3 + 1.0);
}

TEST(Cluster, CentralizationQueuesUnderLoad) {
  // 100 queries to one node vs spread across 10 nodes: the centralized
  // makespan must be ~10x worse — the core Table 4 effect.
  CostModel cm = test_cost();
  Cluster central(10, cm);
  double central_done = 0;
  for (int i = 0; i < 100; ++i) {
    Session s = central.start_session(0, 0.0);
    s.visit(0.01);
    central_done = std::max(central_done, s.clock());
  }
  Cluster spread(10, cm);
  double spread_done = 0;
  for (int i = 0; i < 100; ++i) {
    Session s = spread.start_session(i % 10, 0.0);
    s.visit(0.01);
    spread_done = std::max(spread_done, s.clock());
  }
  EXPECT_NEAR(central_done / spread_done, 10.0, 0.5);
}

}  // namespace
}  // namespace smartstore::sim
