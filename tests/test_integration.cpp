// End-to-end integration scenarios across the whole stack: lifecycle
// (build -> autoconfig -> churn -> reconfigure -> membership changes),
// exactness of on-line queries under churn, determinism, and
// failure-recovery properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/ground_truth.h"
#include "core/smartstore.h"
#include "trace/query_gen.h"
#include "trace/synth.h"

namespace smartstore::core {
namespace {

using metadata::Attr;
using metadata::AttrSubset;
using metadata::FileId;

Config lifecycle_config() {
  Config cfg;
  cfg.num_units = 16;
  cfg.fanout = 4;
  cfg.seed = 99;
  cfg.max_groups_per_query = 4;
  return cfg;
}

TEST(Integration, FullLifecycleKeepsInvariants) {
  auto tr = trace::SyntheticTrace::generate(trace::eecs_profile(), 1, 3, 8);
  SmartStore store(lifecycle_config());
  store.build(tr.files());
  ASSERT_TRUE(store.check_invariants());

  // Auto-configure subset variants.
  store.autoconfigure({AttrSubset({Attr::kFileSize, Attr::kCreationTime}),
                       AttrSubset({Attr::kReadBytes, Attr::kWriteBytes})});
  ASSERT_TRUE(store.check_invariants());

  // Churn: inserts and deletes interleaved.
  const auto extra = tr.make_insert_stream(120, 5);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    store.insert_file(extra[i], static_cast<double>(i));
    if (i % 3 == 2) {
      const auto& victim = tr.files()[i * 7 % tr.files().size()];
      store.delete_file(victim.name, static_cast<double>(i));
    }
    if (i % 40 == 39) ASSERT_TRUE(store.check_invariants()) << i;
  }

  // Reconfigure, then change membership.
  store.reconfigure();
  ASSERT_TRUE(store.check_invariants());
  const UnitId nu = store.add_storage_unit();
  EXPECT_EQ(nu, lifecycle_config().num_units);
  ASSERT_TRUE(store.check_invariants());
  store.remove_storage_unit(2);
  ASSERT_TRUE(store.check_invariants());

  // System still serves queries correctly after all of that.
  trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 17);
  const auto q = gen.gen_range(
      AttrSubset({Attr::kFileSize, Attr::kModificationTime}), 0.1);
  const auto res = store.range_query(q, Routing::kOnline, 0.0);
  EXPECT_FALSE(res.stats.failed);
}

TEST(Integration, OnlineQueriesExactUnderChurn) {
  auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 7, 8);
  SmartStore store(lifecycle_config());
  store.build(tr.files());

  auto all_files = tr.files();
  const auto extra = tr.make_insert_stream(150, 9);
  trace::QueryGenerator gen(tr, trace::QueryDistribution::kGauss, 19);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime});

  for (std::size_t i = 0; i < extra.size(); ++i) {
    store.insert_file(extra[i], static_cast<double>(i));
    all_files.push_back(extra[i]);
    if (i % 10 != 9) continue;
    // On-line range results must track ground truth exactly: MBRs and
    // Bloom filters are updated locally on every insert.
    auto q = gen.gen_range(dims, 0.08);
    auto got = store.range_query(q, Routing::kOnline, 0.0).ids;
    auto want = brute_force_range(all_files, q);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "after insert " << i;
    // Newly inserted file is point-findable on-line.
    EXPECT_TRUE(
        store.point_query({extra[i].name}, Routing::kOnline, 0.0).found);
  }
}

TEST(Integration, DeterministicEndToEnd) {
  auto run = [] {
    auto tr = trace::SyntheticTrace::generate(trace::hp_profile(), 1, 11, 10);
    SmartStore store(lifecycle_config());
    store.build(tr.files());
    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 23);
    std::vector<FileId> sig;
    for (int i = 0; i < 30; ++i) {
      const auto q = gen.gen_topk(AttrSubset::all(), 5);
      for (FileId id : store.topk_query(q, Routing::kOffline, 0.0).ids())
        sig.push_back(id);
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, RootReplicasSurviveSingleFailure) {
  auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 13, 8);
  SmartStore store(lifecycle_config());
  store.build(tr.files());
  const auto& reps = store.tree().root_replicas();
  ASSERT_FALSE(reps.empty());
  // Killing the unit hosting the root still leaves replicas on other units
  // (multi-mapping, Section 4.3): at least one replica is elsewhere when
  // the root has several children.
  const UnitId root_host = store.tree().node(store.tree().root_id()).mapped_unit;
  std::set<UnitId> distinct(reps.begin(), reps.end());
  if (distinct.size() > 1) {
    bool replica_elsewhere = false;
    for (UnitId r : reps)
      if (r != root_host) replica_elsewhere = true;
    EXPECT_TRUE(replica_elsewhere);
  }
}

TEST(Integration, VersionSpaceMonotoneInRatio) {
  auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 17, 10);
  double prev_space = std::numeric_limits<double>::infinity();
  for (const std::size_t ratio : {1u, 4u, 16u}) {
    Config cfg = lifecycle_config();
    cfg.version_ratio = ratio;
    cfg.lazy_update_threshold = 10.0;  // let versions accumulate
    SmartStore store(cfg);
    store.build(tr.files());
    const auto extra = tr.make_insert_stream(128, 21);
    for (std::size_t i = 0; i < extra.size(); ++i)
      store.insert_file(extra[i], static_cast<double>(i));
    const double space = store.avg_version_bytes_per_group();
    EXPECT_LT(space, prev_space) << "ratio " << ratio;
    prev_space = space;
  }
}

TEST(Integration, OfflineQueriesCheaperThanOnlineAfterBuild) {
  auto tr = trace::SyntheticTrace::generate(trace::eecs_profile(), 1, 19, 8);
  SmartStore store(lifecycle_config());
  store.build(tr.files());
  trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 29);
  const AttrSubset dims({Attr::kModificationTime, Attr::kReadBytes});
  std::uint64_t on_msgs = 0, off_msgs = 0;
  for (int i = 0; i < 30; ++i) {
    const auto q = gen.gen_range(dims, 0.05);
    off_msgs += store.range_query(q, Routing::kOffline, i * 1.0).stats.messages;
    on_msgs += store.range_query(q, Routing::kOnline, i * 1.0).stats.messages;
  }
  EXPECT_LT(off_msgs, on_msgs);
}

}  // namespace
}  // namespace smartstore::core
