// util::format_bytes edge cases: the sub-KiB integer path, exact power-of-two
// boundaries, fractional rendering, and the TiB unit cap.
#include "util/bytes.h"

#include <gtest/gtest.h>

namespace smartstore::util {
namespace {

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = kKiB * 1024;
constexpr std::size_t kGiB = kMiB * 1024;
constexpr std::size_t kTiB = kGiB * 1024;

TEST(FormatBytes, ZeroBytes) { EXPECT_EQ(format_bytes(0), "0 B"); }

TEST(FormatBytes, SubKibibyteStaysIntegral) {
  EXPECT_EQ(format_bytes(1), "1 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1023), "1023 B");
}

TEST(FormatBytes, ExactBoundariesPromote) {
  EXPECT_EQ(format_bytes(kKiB), "1.00 KiB");
  EXPECT_EQ(format_bytes(kMiB), "1.00 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
  EXPECT_EQ(format_bytes(kTiB), "1.00 TiB");
}

TEST(FormatBytes, JustBelowBoundaryDoesNotPromote) {
  EXPECT_EQ(format_bytes(kMiB - 1), "1024.00 KiB");
}

TEST(FormatBytes, FractionalValues) {
  EXPECT_EQ(format_bytes(kKiB + kKiB / 2), "1.50 KiB");
  EXPECT_EQ(format_bytes(kMiB * 5 / 2), "2.50 MiB");
}

TEST(FormatBytes, TebibyteIsTheCap) {
  // Beyond TiB there is no larger unit: values keep growing in TiB.
  EXPECT_EQ(format_bytes(kTiB * 1024), "1024.00 TiB");
  EXPECT_EQ(format_bytes(kTiB * 2048), "2048.00 TiB");
}

}  // namespace
}  // namespace smartstore::util
