// Background checkpointing under live traffic.
//
// A writer thread streams WAL-logged inserts through the
// BackgroundCheckpointer's mutation API while checkpoints run on a pool
// worker; the suite asserts the paper-level contract — a checkpoint taken
// while a writer streams inserts produces a snapshot+WAL pair from which
// recover() restores every acknowledged write — plus the logged-
// reconfiguration replay and the epoch/COW accounting. This suite is the
// ThreadSanitizer target for the concurrent checkpoint path.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "persist/bg_checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "trace/synth.h"
#include "util/thread_pool.h"

namespace smartstore::persist {
namespace {

using core::Config;
using core::Routing;
using core::SmartStore;
using metadata::AttrSubset;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("smartstore_bgckpt_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::set<std::string> unit_names(const SmartStore& s) {
  std::set<std::string> out;
  for (const auto& u : s.units())
    for (const auto& f : u.files()) out.insert(f.name);
  return out;
}

struct Deployment {
  trace::SyntheticTrace trace;
  SmartStore store;
  explicit Deployment(std::size_t units, unsigned downscale)
      : trace(trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                              downscale)),
        store(make_config(units)) {
    store.build(trace.files());
  }
  static Config make_config(std::size_t units) {
    Config cfg;
    cfg.num_units = units;
    cfg.seed = 7;
    return cfg;
  }
};

TEST(BgCheckpoint, RestoresEveryAcknowledgedWriteUnderLiveInsertStream) {
  const std::string dir = temp_dir("live");
  Deployment d(8, /*downscale=*/20);
  SmartStore& store = d.store;

  WalWriter wal(wal_path(dir), /*group_commit=*/4);
  checkpoint(store, dir, &wal);

  util::ThreadPool pool(2);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  const auto stream = d.trace.make_insert_stream(300, 77);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      // Halfway through, wait until a checkpoint is actually in its
      // frozen window so the second half of the stream provably rides
      // along with one (main triggers continuously below, so this always
      // terminates; without the gate, a loaded machine can schedule the
      // whole stream before the first freeze).
      if (i == stream.size() / 2)
        while (!store.checkpoint_active()) std::this_thread::yield();
      bg.insert(stream[i]);
    }
    done.store(true, std::memory_order_release);
  });

  // Checkpoint continuously while the stream runs, then top up to at
  // least two completed checkpoints.
  std::size_t checkpoints = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (bg.trigger()) {
      bg.wait();
      ++checkpoints;
    } else {
      std::this_thread::yield();
    }
  }
  writer.join();
  while (checkpoints < 2) {
    ASSERT_TRUE(bg.trigger());
    bg.wait();
    ++checkpoints;
  }

  EXPECT_GE(checkpoints, 2u);
  // The gated second half of the stream overlapped a frozen window, so
  // mutations demonstrably rode along with a checkpoint. (Whether they
  // also *copied* depends on which pieces were still unserialized at that
  // instant — FrozenViewExcludesMidCheckpointMutations asserts the COW
  // semantics deterministically.)
  EXPECT_GT(bg.total_mutations_during(), 0u);

  // Every acknowledged write: the live store and the recovered one agree
  // exactly (inserts beyond the last fence replay from the rebased tail).
  wal.commit();
  const RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  for (const auto& f : stream) {
    bool present = false;
    for (const auto& u : rec.store->units())
      if (u.find_by_name(f.name)) present = true;
    ASSERT_TRUE(present) << "acknowledged insert lost: " << f.name;
  }
  std::filesystem::remove_all(dir);
}

TEST(BgCheckpoint, FrozenViewExcludesMidCheckpointMutations) {
  // Deterministic copy-on-write check: a mutation landing between the
  // freeze and the serialization must copy the pieces it touches, and the
  // published snapshot must show the freeze-epoch state — without the
  // mutation — while the live store keeps it.
  const std::string dir = temp_dir("frozen_view");
  Deployment d(6, /*downscale=*/40);
  SmartStore& store = d.store;
  const std::size_t files_at_freeze = store.total_files();

  WalWriter wal(wal_path(dir), /*group_commit=*/4);
  wal.commit();
  const WalFence fence{wal.generation(), wal.committed_records(), true};
  store.begin_checkpoint();

  const auto extra = d.trace.make_insert_stream(3, 11);
  for (const auto& f : extra) {
    wal.log_insert(f);
    store.insert_file(f, 0.0);
  }
  EXPECT_GT(store.checkpoint_cow_copies(), 0u);  // pieces were all pending

  save_snapshot_frozen(store, snapshot_path(dir), fence);
  wal.rebase(static_cast<std::size_t>(fence.records));
  store.end_checkpoint();
  wal.commit();

  // The image alone is the freeze-epoch state...
  const auto frozen = load_snapshot(snapshot_path(dir));
  EXPECT_EQ(frozen->total_files(), files_at_freeze);
  for (const auto& f : extra) {
    for (const auto& u : frozen->units())
      EXPECT_EQ(u.find_by_name(f.name), nullptr);
  }
  // ...and image + rebased tail is the live state.
  const RecoveryResult rec = recover(dir);
  EXPECT_EQ(rec.wal_records, extra.size());
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  std::filesystem::remove_all(dir);
}

TEST(BgCheckpoint, ServesQueriesOnTheWritingThreadDuringCheckpoints) {
  const std::string dir = temp_dir("queries");
  Deployment d(6, /*downscale=*/40);
  SmartStore& store = d.store;

  WalWriter wal(wal_path(dir), /*group_commit=*/4);
  checkpoint(store, dir, &wal);

  util::ThreadPool pool(1);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  const auto stream = d.trace.make_insert_stream(120, 5);
  std::atomic<bool> done{false};
  std::size_t found = 0;
  std::thread serving([&] {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      bg.insert(stream[i]);
      // Query the file just inserted: on-line routing is exact, so it
      // must be visible immediately, checkpoint or no checkpoint.
      const auto res =
          store.point_query({stream[i].name}, Routing::kOnline, 0.0);
      if (res.found) ++found;
    }
    done.store(true, std::memory_order_release);
  });

  std::size_t checkpoints = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (bg.trigger()) {
      bg.wait();
      ++checkpoints;
    }
  }
  serving.join();
  while (checkpoints < 1) {
    ASSERT_TRUE(bg.trigger());
    bg.wait();
    ++checkpoints;
  }

  EXPECT_EQ(found, stream.size());
  EXPECT_GE(checkpoints, 1u);
  std::filesystem::remove_all(dir);
}

TEST(BgCheckpoint, LoggedReconfigurationReplaysIntoNewTopology) {
  const std::string dir = temp_dir("reconf");
  Deployment d(6, /*downscale=*/40);
  SmartStore& store = d.store;

  WalWriter wal(wal_path(dir), /*group_commit=*/2);
  checkpoint(store, dir, &wal);
  const std::size_t base_units = store.units().size();

  util::ThreadPool pool(1);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  // Reconfigure and mutate, never checkpointing afterwards: recovery must
  // replay the topology changes from the log alone (the PR-2 gap).
  const core::UnitId added = bg.add_storage_unit();
  EXPECT_EQ(added, base_units);
  const auto stream = d.trace.make_insert_stream(12, 9);
  for (const auto& f : stream) bg.insert(f);
  bg.remove_storage_unit(1);
  const std::vector<AttrSubset> cands = {AttrSubset::from_mask(0x7u)};
  bg.autoconfigure(cands);
  wal.commit();

  // No index unit may stay hosted on the removed server: routing would
  // send every query crossing it to a dead node forever.
  auto hosts_on = [](const SmartStore& s, core::UnitId u) {
    std::size_t count = 0;
    std::vector<std::size_t> stack{s.tree().root_id()};
    while (!stack.empty()) {
      const auto& n = s.tree().node(stack.back());
      stack.pop_back();
      if (n.mapped_unit == u) ++count;
      if (n.level > 1)
        for (std::size_t c : n.children) stack.push_back(c);
    }
    return count;
  };
  EXPECT_EQ(hosts_on(store, 1), 0u);

  const RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_EQ(rec.store->units().size(), base_units + 1);
  EXPECT_FALSE(rec.store->unit_active(1));
  EXPECT_EQ(hosts_on(*rec.store, 1), 0u);
  EXPECT_TRUE(rec.store->unit_active(added));
  EXPECT_EQ(rec.store->variants().size(), store.variants().size());
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  std::filesystem::remove_all(dir);
}

TEST(BgCheckpoint, SecondTriggerWhileRunningIsRejected) {
  const std::string dir = temp_dir("reject");
  Deployment d(6, /*downscale=*/30);
  SmartStore& store = d.store;

  WalWriter wal(wal_path(dir), /*group_commit=*/4);
  checkpoint(store, dir, &wal);
  util::ThreadPool pool(2);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  ASSERT_TRUE(bg.trigger());
  // Only meaningful while the first is still in flight; the check is
  // skipped if the worker already finished (tiny stores snapshot fast).
  if (bg.running()) {
    EXPECT_FALSE(bg.trigger());
  }
  EXPECT_TRUE(bg.wait());
  EXPECT_EQ(bg.completed(), 1u);
  EXPECT_GT(bg.last_stats().snapshot_bytes, 0u);

  // After completion a new checkpoint is accepted again.
  ASSERT_TRUE(bg.trigger());
  EXPECT_TRUE(bg.wait());
  EXPECT_EQ(bg.completed(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(BgCheckpoint, FenceAccountingMatchesTheLog) {
  const std::string dir = temp_dir("fence");
  Deployment d(6, /*downscale=*/40);
  SmartStore& store = d.store;

  WalWriter wal(wal_path(dir), /*group_commit=*/2);
  checkpoint(store, dir, &wal);

  util::ThreadPool pool(1);
  BackgroundCheckpointer bg(store, dir, wal, pool);
  const auto stream = d.trace.make_insert_stream(10, 3);
  for (std::size_t i = 0; i < 6; ++i) bg.insert(stream[i]);
  wal.commit();
  const std::uint64_t before_gen = wal.generation();

  ASSERT_TRUE(bg.trigger());
  bg.wait();
  const CheckpointStats& st = bg.last_stats();
  EXPECT_EQ(st.fence_generation, before_gen);
  EXPECT_EQ(st.fence_records, 6u);
  // The fenced prefix was rebased away under a fresh generation.
  EXPECT_EQ(wal.generation(), before_gen + 1);
  EXPECT_EQ(wal.committed_records(), 0u);

  // Post-checkpoint inserts live only in the tail; recovery stitches the
  // snapshot and tail together.
  for (std::size_t i = 6; i < stream.size(); ++i) bg.insert(stream[i]);
  wal.commit();
  const RecoveryResult rec = recover(dir);
  EXPECT_EQ(rec.wal_fenced, 0u);  // generation changed: nothing to skip
  EXPECT_EQ(rec.wal_records, 4u);
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smartstore::persist
