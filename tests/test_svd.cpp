// Tests for the eigensolver and SVD: reconstruction, orthogonality,
// agreement between the Gram route and one-sided Jacobi, truncation.
#include "la/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace smartstore::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gauss();
  return a;
}

double orthogonality_defect(const Matrix& u) {
  // max |U^T U - I|
  const Matrix g = u.gram();
  double worst = 0.0;
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j)
      worst = std::max(worst, std::fabs(g(i, j) - (i == j ? 1.0 : 0.0)));
  return worst;
}

TEST(EigenSymmetric, DiagonalMatrix) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 5;
  a(1, 1) = 2;
  a(2, 2) = 9;
  const auto r = eigen_symmetric(a);
  EXPECT_NEAR(r.eigenvalues[0], 9, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 5, 1e-10);
  EXPECT_NEAR(r.eigenvalues[2], 2, 1e-10);
}

TEST(EigenSymmetric, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.set_row(0, {2, 1});
  a.set_row(1, {1, 2});
  const auto r = eigen_symmetric(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenSymmetric, ReconstructsMatrix) {
  const Matrix base = random_matrix(6, 6, 1);
  // Symmetrize.
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      a(i, j) = 0.5 * (base(i, j) + base(j, i));
  const auto r = eigen_symmetric(a);
  // Q diag(l) Q^T == a
  Matrix recon(6, 6, 0.0);
  for (std::size_t k = 0; k < 6; ++k)
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j)
        recon(i, j) += r.eigenvalues[k] * r.eigenvectors(i, k) *
                       r.eigenvectors(j, k);
  EXPECT_LT(Matrix::max_abs_diff(recon, a), 1e-9);
  EXPECT_LT(orthogonality_defect(r.eigenvectors), 1e-10);
}

struct SvdShape {
  std::size_t m, n;
  std::uint64_t seed;
};

class SvdParamTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdParamTest, ThinSvdReconstructs) {
  const auto [m, n, seed] = GetParam();
  const Matrix a = random_matrix(m, n, seed);
  const SvdResult svd = svd_thin(a);
  EXPECT_LE(svd.sigma.size(), std::min(m, n));
  EXPECT_LT(Matrix::max_abs_diff(svd.reconstruct(), a), 1e-8);
  EXPECT_LT(orthogonality_defect(svd.u), 1e-8);
  EXPECT_LT(orthogonality_defect(svd.v), 1e-8);
  for (std::size_t i = 1; i < svd.sigma.size(); ++i)
    EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
}

TEST_P(SvdParamTest, JacobiAgreesWithThin) {
  const auto [m, n, seed] = GetParam();
  const Matrix a = random_matrix(m, n, seed + 1000);
  const SvdResult s1 = svd_thin(a);
  const SvdResult s2 = svd_jacobi_one_sided(a);
  ASSERT_EQ(s1.sigma.size(), s2.sigma.size());
  for (std::size_t i = 0; i < s1.sigma.size(); ++i)
    EXPECT_NEAR(s1.sigma[i], s2.sigma[i], 1e-8 * (1.0 + s1.sigma[0]));
  EXPECT_LT(Matrix::max_abs_diff(s2.reconstruct(), a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdParamTest,
    ::testing::Values(SvdShape{3, 3, 1}, SvdShape{2, 7, 2}, SvdShape{7, 2, 3},
                      SvdShape{10, 10, 4}, SvdShape{4, 32, 5},
                      SvdShape{32, 4, 6}, SvdShape{1, 5, 7},
                      SvdShape{5, 1, 8}, SvdShape{12, 40, 9}));

TEST(Svd, RankDeficientMatrixDropsZeroSingularValues) {
  // Rank-1: outer product.
  Matrix a(4, 5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 2);
  const SvdResult svd = svd_thin(a);
  EXPECT_EQ(svd.sigma.size(), 1u);
  EXPECT_LT(Matrix::max_abs_diff(svd.reconstruct(), a), 1e-9);
}

TEST(Svd, TruncationKeepsLargestTriplets) {
  const Matrix a = random_matrix(6, 20, 42);
  SvdResult svd = svd_thin(a);
  const Vector full_sigma = svd.sigma;
  svd.truncate(3);
  ASSERT_EQ(svd.sigma.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(svd.sigma[i], full_sigma[i]);
  EXPECT_EQ(svd.u.cols(), 3u);
  EXPECT_EQ(svd.v.cols(), 3u);
  // Rank-3 reconstruction error is bounded by sigma_4 (Eckart–Young).
  const Matrix r3 = svd.reconstruct();
  Matrix diff(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      diff(i, j) = a(i, j) - r3(i, j);
  const SvdResult err = svd_thin(diff);
  EXPECT_NEAR(err.sigma[0], full_sigma[3], 1e-7 * (1 + full_sigma[0]));
}

TEST(Svd, TruncateBeyondRankIsNoop) {
  const Matrix a = random_matrix(3, 5, 77);
  SvdResult svd = svd_thin(a);
  const std::size_t r = svd.sigma.size();
  svd.truncate(100);
  EXPECT_EQ(svd.sigma.size(), r);
}

TEST(Svd, SingularValuesOfOrthogonalColumnsAreNorms) {
  Matrix a(4, 2, 0.0);
  a(0, 0) = 3;  // column 0 = (3,0,0,0), norm 3
  a(1, 1) = 7;  // column 1 = (0,7,0,0), norm 7
  const SvdResult svd = svd_thin(a);
  ASSERT_EQ(svd.sigma.size(), 2u);
  EXPECT_NEAR(svd.sigma[0], 7, 1e-10);
  EXPECT_NEAR(svd.sigma[1], 3, 1e-10);
}

TEST(Svd, EmptyAndTinyInputs) {
  Matrix a(1, 1);
  a(0, 0) = 4;
  const SvdResult svd = svd_thin(a);
  ASSERT_EQ(svd.sigma.size(), 1u);
  EXPECT_NEAR(svd.sigma[0], 4.0, 1e-12);
}

}  // namespace
}  // namespace smartstore::la
