// Multi-writer serving: the striped mutation path under real threads.
//
// The contract under test (the PR's tentpole): any number of writer
// threads may insert/erase concurrently — routing under the shared
// structure lock, the mutation under the target unit's stripe — while
// background checkpoints freeze, serialize and rebase the sharded WAL
// underneath, and queries keep running throughout. Assertions run against
// a map oracle after the threads join (every insert landed exactly once,
// invariants hold, recovery reproduces the live state); the data-race
// half of the contract is what the ThreadSanitizer build of this suite
// checks (CMakePresets' tsan preset includes it).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "persist/bg_checkpoint.h"
#include "persist/recovery.h"
#include "persist/wal_shard.h"
#include "trace/synth.h"
#include "util/thread_pool.h"

namespace smartstore::persist {
namespace {

using core::Config;
using core::Routing;
using core::SmartStore;
using metadata::FileMetadata;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("smartstore_conc_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::set<std::string> unit_names(const SmartStore& s) {
  std::set<std::string> out;
  for (const auto& u : s.units())
    for (const auto& f : u.files()) out.insert(f.name);
  return out;
}

struct Deployment {
  trace::SyntheticTrace trace;
  SmartStore store;
  explicit Deployment(std::size_t units, unsigned downscale)
      : trace(trace::SyntheticTrace::generate(trace::msn_profile(), 1, 42,
                                              downscale)),
        store([&] {
          Config cfg;
          cfg.num_units = units;
          cfg.seed = 7;
          return cfg;
        }()) {
    store.build(trace.files());
  }
};

/// Splits [0, n) into `parts` contiguous ranges.
std::vector<std::pair<std::size_t, std::size_t>> split(std::size_t n,
                                                       std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t chunk = (n + parts - 1) / parts;
  for (std::size_t b = 0; b < n; b += chunk)
    out.emplace_back(b, std::min(b + chunk, n));
  return out;
}

TEST(MultiWriter, ConcurrentInsertsAllLandExactlyOnce) {
  Deployment d(8, /*downscale=*/20);
  SmartStore& store = d.store;
  const std::set<std::string> base = unit_names(store);
  const std::size_t base_count = store.total_files();

  const auto stream = d.trace.make_insert_stream(600, 77);
  const auto ranges = split(stream.size(), 4);
  std::vector<std::thread> writers;
  for (const auto& [b, e] : ranges) {
    writers.emplace_back([&, b = b, e = e] {
      const std::vector<FileMetadata> chunk(
          stream.begin() + static_cast<std::ptrdiff_t>(b),
          stream.begin() + static_cast<std::ptrdiff_t>(e));
      store.insert_batch(chunk, 0.0);
    });
  }
  for (auto& t : writers) t.join();

  // Oracle: base ∪ stream, every insert exactly once.
  EXPECT_EQ(store.total_files(), base_count + stream.size());
  EXPECT_TRUE(store.check_invariants());
  std::set<std::string> expect = base;
  for (const auto& f : stream) expect.insert(f.name);
  EXPECT_EQ(unit_names(store), expect);

  // On-line point routing is exact: every inserted file must resolve.
  std::size_t probes = 0;
  for (const auto& f : stream) {
    if (++probes > 40) break;
    EXPECT_TRUE(store.point_query({f.name}, Routing::kOnline, 0.0).found)
        << f.name;
  }
}

TEST(MultiWriter, ConcurrentInsertAndEraseMatchOracle) {
  Deployment d(8, /*downscale=*/20);
  SmartStore& store = d.store;
  const std::set<std::string> base = unit_names(store);

  // Each thread inserts its own slice and erases every third of its own
  // files — disjoint names, so the per-thread oracles compose.
  const auto stream = d.trace.make_insert_stream(480, 99);
  const auto ranges = split(stream.size(), 4);
  std::vector<std::thread> writers;
  for (const auto& [b, e] : ranges) {
    writers.emplace_back([&, b = b, e = e] {
      for (std::size_t i = b; i < e; ++i) {
        store.insert_file(stream[i], 0.0);
        if ((i - b) % 3 == 2) {
          EXPECT_TRUE(store.erase_file(stream[i].name)) << stream[i].name;
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  std::set<std::string> expect = base;
  for (const auto& [b, e] : ranges)
    for (std::size_t i = b; i < e; ++i)
      if ((i - b) % 3 != 2) expect.insert(stream[i].name);
  EXPECT_TRUE(store.check_invariants());
  EXPECT_EQ(unit_names(store), expect);
  EXPECT_EQ(store.total_files(), expect.size());
}

TEST(MultiWriter, QueriesRunConcurrentlyWithWriters) {
  Deployment d(8, /*downscale=*/20);
  SmartStore& store = d.store;
  const auto stream = d.trace.make_insert_stream(400, 55);
  const auto dims = metadata::AttrSubset::all();

  std::atomic<bool> done{false};
  std::atomic<std::size_t> found{0};
  // Two reader threads hammer all three query kinds in both routing modes
  // while two writers insert; TSan is the judge, the counters just keep
  // the work from being optimized away.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto& f = stream[(i * 13 + static_cast<std::size_t>(r)) %
                               stream.size()];
        const Routing routing = i % 2 == 0 ? Routing::kOnline
                                           : Routing::kOffline;
        if (store.point_query({f.name}, routing, 0.0).found)
          found.fetch_add(1, std::memory_order_relaxed);
        metadata::RangeQuery rq;
        rq.dims = dims;
        for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) {
          rq.lo.push_back(f.attr(static_cast<metadata::Attr>(a)) * 0.9 - 1);
          rq.hi.push_back(f.attr(static_cast<metadata::Attr>(a)) * 1.1 + 1);
        }
        found.fetch_add(store.range_query(rq, routing, 0.0).ids.size(),
                        std::memory_order_relaxed);
        metadata::TopKQuery tq;
        tq.dims = dims;
        tq.k = 4;
        for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
          tq.point.push_back(f.attr(static_cast<metadata::Attr>(a)));
        found.fetch_add(store.topk_query(tq, routing, 0.0).hits.size(),
                        std::memory_order_relaxed);
        ++i;
      }
    });
  }
  const auto ranges = split(stream.size(), 2);
  std::vector<std::thread> writers;
  for (const auto& [b, e] : ranges) {
    writers.emplace_back([&, b = b, e = e] {
      for (std::size_t i = b; i < e; ++i) store.insert_file(stream[i], 0.0);
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_TRUE(store.check_invariants());
  EXPECT_GT(found.load(), 0u);
  // Every inserted file is visible to exact on-line routing afterwards.
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(
        store.point_query({stream[i].name}, Routing::kOnline, 0.0).found);
  }
}

TEST(MultiWriter, ShardedWalBackgroundCheckpointsRecoverEverything) {
  const std::string dir = temp_dir("bg");
  Deployment d(8, /*downscale=*/20);
  SmartStore& store = d.store;

  ShardedWal wal(dir, store.units().size(), /*group_commit=*/4);
  checkpoint(store, dir, wal);

  util::ThreadPool pool(2);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  const auto stream = d.trace.make_insert_stream(600, 31);
  const auto ranges = split(stream.size(), 4);
  std::atomic<std::size_t> done_writers{0};
  std::vector<std::thread> writers;
  for (const auto& [b, e] : ranges) {
    writers.emplace_back([&, b = b, e = e] {
      for (std::size_t i = b; i < e; ++i) {
        bg.insert(stream[i]);
        // A third of each thread's files are erased again, through the
        // same sharded write-ahead discipline.
        if ((i - b) % 3 == 2) EXPECT_TRUE(bg.erase(stream[i].name));
      }
      done_writers.fetch_add(1, std::memory_order_release);
    });
  }

  // Checkpoint continuously while the writers stream.
  std::size_t checkpoints = 0;
  while (done_writers.load(std::memory_order_acquire) < writers.size()) {
    if (bg.trigger()) {
      bg.wait();
      ++checkpoints;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : writers) t.join();
  while (checkpoints < 2) {
    ASSERT_TRUE(bg.trigger());
    bg.wait();
    ++checkpoints;
  }
  EXPECT_GE(checkpoints, 2u);

  // Acknowledge everything still pending, then recovery must reproduce
  // the live store exactly: snapshot + merged shard tails.
  wal.commit_all();
  const RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_GT(rec.wal_shards, 0u);
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  std::filesystem::remove_all(dir);
}

TEST(MultiWriter, StructuralOpsBarrierAgainstConcurrentWriters) {
  const std::string dir = temp_dir("structural");
  Deployment d(6, /*downscale=*/30);
  SmartStore& store = d.store;

  ShardedWal wal(dir, store.units().size(), /*group_commit=*/4);
  checkpoint(store, dir, wal);
  util::ThreadPool pool(2);
  BackgroundCheckpointer bg(store, dir, wal, pool);

  const auto stream = d.trace.make_insert_stream(300, 13);
  const auto ranges = split(stream.size(), 3);
  std::vector<std::thread> writers;
  for (const auto& [b, e] : ranges) {
    writers.emplace_back([&, b = b, e = e] {
      for (std::size_t i = b; i < e; ++i) bg.insert(stream[i]);
    });
  }
  // Topology changes race the writers: the structural barrier (commit all
  // shards, then log + commit the structural record) keeps the merged
  // replay order exact.
  const core::UnitId added = bg.add_storage_unit();
  bg.autoconfigure({metadata::AttrSubset::from_mask(0x7u)});
  for (auto& t : writers) t.join();
  EXPECT_GE(added, 6u);

  wal.commit_all();
  const RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_EQ(rec.store->units().size(), store.units().size());
  EXPECT_EQ(rec.store->variants().size(), store.variants().size());
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_EQ(unit_names(*rec.store), unit_names(store));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smartstore::persist
