// Unit tests for the thread pool.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace smartstore::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t i) { counts[i]++; });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace
}  // namespace smartstore::util
