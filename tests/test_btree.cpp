// Tests for the B+-tree: ordering, range scans, deletion rebalancing, and
// randomized property tests against a reference std::set.
#include "btree/bplus_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace smartstore::btree {
namespace {

using Tree = BPlusTree<double, std::uint64_t, 8>;  // small order: deep trees

TEST(BPlusTree, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_FALSE(t.contains(1.0, 1));
  EXPECT_FALSE(t.erase(1.0, 1));
  EXPECT_TRUE(t.check_invariants());
}

TEST(BPlusTree, InsertAndContains) {
  Tree t;
  EXPECT_TRUE(t.insert(5.0, 50));
  EXPECT_TRUE(t.insert(3.0, 30));
  EXPECT_TRUE(t.insert(8.0, 80));
  EXPECT_TRUE(t.contains(5.0, 50));
  EXPECT_TRUE(t.contains(3.0, 30));
  EXPECT_FALSE(t.contains(5.0, 51));
  EXPECT_FALSE(t.contains(4.0, 50));
  EXPECT_EQ(t.size(), 3u);
}

TEST(BPlusTree, DuplicateCompositeRejected) {
  Tree t;
  EXPECT_TRUE(t.insert(1.0, 10));
  EXPECT_FALSE(t.insert(1.0, 10));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, DuplicateKeysDifferentValuesAccepted) {
  Tree t;
  for (std::uint64_t v = 0; v < 100; ++v) EXPECT_TRUE(t.insert(7.0, v));
  EXPECT_EQ(t.size(), 100u);
  std::size_t count = 0;
  t.range_scan(7.0, 7.0, [&](double, std::uint64_t) { ++count; });
  EXPECT_EQ(count, 100u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(BPlusTree, RangeScanInclusiveBounds) {
  Tree t;
  for (int i = 0; i < 50; ++i) t.insert(static_cast<double>(i), i);
  std::vector<double> keys;
  t.range_scan(10.0, 20.0, [&](double k, std::uint64_t) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_DOUBLE_EQ(keys.front(), 10.0);
  EXPECT_DOUBLE_EQ(keys.back(), 20.0);
  for (std::size_t i = 1; i < keys.size(); ++i)
    EXPECT_LE(keys[i - 1], keys[i]);
}

TEST(BPlusTree, RangeScanEmptyAndInverted) {
  Tree t;
  for (int i = 0; i < 10; ++i) t.insert(static_cast<double>(i), i);
  std::size_t n = 0;
  t.range_scan(100.0, 200.0, [&](double, std::uint64_t) { ++n; });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(t.range_scan(5.0, 1.0, [](double, std::uint64_t) {}), 0u);
}

TEST(BPlusTree, ForEachIsSorted) {
  Tree t;
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i)
    t.insert(rng.uniform(-100, 100), static_cast<std::uint64_t>(i));
  double prev = -1e18;
  t.for_each([&](double k, std::uint64_t) {
    EXPECT_GE(k, prev);
    prev = k;
  });
}

TEST(BPlusTree, EraseLeafSimple) {
  Tree t;
  for (int i = 0; i < 5; ++i) t.insert(static_cast<double>(i), i);
  EXPECT_TRUE(t.erase(2.0, 2));
  EXPECT_FALSE(t.contains(2.0, 2));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.erase(2.0, 2));
  EXPECT_TRUE(t.check_invariants());
}

TEST(BPlusTree, EraseToEmpty) {
  Tree t;
  for (int i = 0; i < 100; ++i) t.insert(static_cast<double>(i), i);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(t.erase(static_cast<double>(i), i));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(BPlusTree, HeightGrowsLogarithmically) {
  Tree t;
  for (int i = 0; i < 4096; ++i) t.insert(static_cast<double>(i), i);
  // Order 8: height should be around log_4..8(4096) = 4..6, certainly < 10.
  EXPECT_GE(t.height(), 4u);
  EXPECT_LT(t.height(), 10u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(BPlusTree, StringKeys) {
  BPlusTree<std::string, std::uint64_t, 16> t;
  t.insert("/home/alice/a.txt", 1);
  t.insert("/home/bob/b.txt", 2);
  t.insert("/var/log/syslog", 3);
  EXPECT_TRUE(t.contains("/home/bob/b.txt", 2));
  std::size_t n = 0;
  t.range_scan("/home", "/home~", [&](const std::string&, std::uint64_t) {
    ++n;
  });
  EXPECT_EQ(n, 2u);
}

TEST(BPlusTree, ByteSizeGrowsWithContent) {
  Tree t;
  const std::size_t empty = t.byte_size();
  for (int i = 0; i < 1000; ++i) t.insert(static_cast<double>(i), i);
  EXPECT_GT(t.byte_size(), empty);
  EXPECT_GT(t.leaf_count(), 0u);
  EXPECT_GT(t.internal_count(), 0u);
}

// Randomized differential test against std::set<pair>.
class BtreeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtreeRandomTest, MatchesReferenceUnderRandomOps) {
  util::Rng rng(GetParam());
  Tree t;
  std::set<std::pair<double, std::uint64_t>> ref;

  for (int op = 0; op < 4000; ++op) {
    const double key = static_cast<double>(rng.uniform_int(0, 200));
    const std::uint64_t val = rng.uniform_u64(50);
    if (rng.bernoulli(0.6)) {
      const bool inserted = t.insert(key, val);
      const bool ref_inserted = ref.insert({key, val}).second;
      ASSERT_EQ(inserted, ref_inserted) << "op " << op;
    } else {
      const bool erased = t.erase(key, val);
      const bool ref_erased = ref.erase({key, val}) > 0;
      ASSERT_EQ(erased, ref_erased) << "op " << op;
    }
    if (op % 500 == 0) ASSERT_TRUE(t.check_invariants()) << "op " << op;
  }
  ASSERT_EQ(t.size(), ref.size());
  ASSERT_TRUE(t.check_invariants());

  // Full scan agrees.
  std::vector<std::pair<double, std::uint64_t>> scanned;
  t.for_each([&](double k, std::uint64_t v) { scanned.emplace_back(k, v); });
  std::vector<std::pair<double, std::uint64_t>> expect(ref.begin(), ref.end());
  ASSERT_EQ(scanned, expect);

  // Random range scans agree.
  for (int q = 0; q < 50; ++q) {
    double lo = static_cast<double>(rng.uniform_int(0, 200));
    double hi = static_cast<double>(rng.uniform_int(0, 200));
    if (hi < lo) std::swap(lo, hi);
    std::vector<std::pair<double, std::uint64_t>> got;
    t.range_scan(lo, hi,
                 [&](double k, std::uint64_t v) { got.emplace_back(k, v); });
    std::vector<std::pair<double, std::uint64_t>> want;
    for (const auto& e : ref)
      if (e.first >= lo && e.first <= hi) want.push_back(e);
    ASSERT_EQ(got, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace smartstore::btree
