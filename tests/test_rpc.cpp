// The rpc layer: wire-format round trips and rejection of damaged or
// future-versioned frames; the in-process transport's bind/call/unbind
// lifecycle; the fault-injecting channel's bookkeeping; and a socket
// round trip over loopback TCP (same Channel contract, real kernel).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "metadata/schema.h"
#include "rpc/fault.h"
#include "rpc/inproc.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace {

using namespace smartstore;

metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = "/sub0/u001/app002/f" + std::to_string(id) + ".dat";
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
    f.attrs[a] = static_cast<double>(id) * 1.5 + static_cast<double>(a);
  return f;
}

rpc::Frame make_request(rpc::Method m) {
  rpc::Frame f;
  f.type = rpc::MsgType::kRequest;
  f.method = m;
  f.shard = 3;
  f.client_id = 42;
  f.seq = 7;
  f.map_version = 2;
  return f;
}

// ---- frame ------------------------------------------------------------------

TEST(Wire, FrameRoundTrip) {
  rpc::Frame f = make_request(rpc::Method::kPut);
  rpc::encode_file(make_file(9), &f.payload);

  const std::vector<std::uint8_t> bytes = rpc::encode_frame(f);
  ASSERT_EQ(bytes.size(), rpc::kFrameHeaderBytes + f.payload.size());

  rpc::Frame out;
  ASSERT_TRUE(rpc::decode_frame(bytes, &out).ok());
  EXPECT_EQ(out.type, f.type);
  EXPECT_EQ(out.method, f.method);
  EXPECT_EQ(out.status, f.status);
  EXPECT_EQ(out.shard, f.shard);
  EXPECT_EQ(out.client_id, f.client_id);
  EXPECT_EQ(out.seq, f.seq);
  EXPECT_EQ(out.map_version, f.map_version);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  const rpc::Frame f = make_request(rpc::Method::kPing);
  rpc::Frame out;
  ASSERT_TRUE(rpc::decode_frame(rpc::encode_frame(f), &out).ok());
  EXPECT_TRUE(out.payload.empty());
}

TEST(Wire, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes =
      rpc::encode_frame(make_request(rpc::Method::kPing));
  bytes[0] ^= 0xff;
  rpc::Frame out;
  EXPECT_EQ(rpc::decode_frame(bytes, &out).code(),
            db::StatusCode::kCorruption);
}

TEST(Wire, RejectsPayloadCorruption) {
  rpc::Frame f = make_request(rpc::Method::kPut);
  rpc::encode_file(make_file(1), &f.payload);
  std::vector<std::uint8_t> bytes = rpc::encode_frame(f);
  bytes.back() ^= 0x01;  // flip one payload bit: the CRC must catch it
  rpc::Frame out;
  EXPECT_EQ(rpc::decode_frame(bytes, &out).code(),
            db::StatusCode::kCorruption);
}

TEST(Wire, RejectsTruncation) {
  const std::vector<std::uint8_t> bytes =
      rpc::encode_frame(make_request(rpc::Method::kPing));
  rpc::Frame out;
  for (const std::size_t cut : {std::size_t{0}, std::size_t{5},
                                rpc::kFrameHeaderBytes - 1}) {
    EXPECT_EQ(rpc::decode_frame(bytes.data(), cut, &out).code(),
              db::StatusCode::kCorruption)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Wire, RejectsFutureVersion) {
  std::vector<std::uint8_t> bytes =
      rpc::encode_frame(make_request(rpc::Method::kPing));
  bytes[4] = static_cast<std::uint8_t>((rpc::kWireVersion + 1) & 0xff);
  bytes[5] = static_cast<std::uint8_t>((rpc::kWireVersion + 1) >> 8);
  rpc::Frame out;
  // A newer version is a negotiation failure, not damage.
  EXPECT_EQ(rpc::decode_frame(bytes, &out).code(),
            db::StatusCode::kInvalidArgument);
}

TEST(Wire, PeekPayloadLen) {
  rpc::Frame f = make_request(rpc::Method::kPut);
  f.payload.assign(123, 0xab);
  const std::vector<std::uint8_t> bytes = rpc::encode_frame(f);
  std::uint32_t len = 0;
  ASSERT_TRUE(
      rpc::peek_payload_len(bytes.data(), rpc::kFrameHeaderBytes, &len).ok());
  EXPECT_EQ(len, 123u);
}

// ---- payload codecs ---------------------------------------------------------

TEST(Wire, FilePayloadRoundTrip) {
  const metadata::FileMetadata f = make_file(77);
  std::vector<std::uint8_t> bytes;
  rpc::encode_file(f, &bytes);
  metadata::FileMetadata out;
  ASSERT_TRUE(rpc::decode_file(bytes, &out).ok());
  EXPECT_EQ(out.id, f.id);
  EXPECT_EQ(out.name, f.name);
  EXPECT_EQ(out.attrs, f.attrs);
}

TEST(Wire, QueryPayloadRoundTrips) {
  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset(
      {metadata::Attr::kModificationTime, metadata::Attr::kReadBytes});
  rq.lo = la::Vector{0.0, 10.0};
  rq.hi = la::Vector{5.0, 50.0};
  std::vector<std::uint8_t> bytes;
  rpc::encode_range_query(rq, &bytes);
  metadata::RangeQuery rq_out;
  ASSERT_TRUE(rpc::decode_range_query(bytes, &rq_out).ok());
  ASSERT_EQ(rq_out.dims.size(), 2u);
  EXPECT_EQ(rq_out.dims[0], metadata::Attr::kModificationTime);
  EXPECT_DOUBLE_EQ(rq_out.hi[1], 50.0);

  metadata::TopKQuery tq;
  tq.dims = rq.dims;
  tq.point = la::Vector{1.0, 2.0};
  tq.k = 5;
  bytes.clear();
  rpc::encode_topk_query(tq, &bytes);
  metadata::TopKQuery tq_out;
  ASSERT_TRUE(rpc::decode_topk_query(bytes, &tq_out).ok());
  EXPECT_EQ(tq_out.k, 5u);
  EXPECT_DOUBLE_EQ(tq_out.point[0], 1.0);
}

TEST(Wire, QueryAsOfTokenRoundTrip) {
  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset({metadata::Attr::kFileSize});
  rq.lo = la::Vector{0.0};
  rq.hi = la::Vector{1.0};
  std::vector<std::uint8_t> bytes;
  rpc::encode_range_query(rq, &bytes, rpc::as_of_token(41));
  metadata::RangeQuery rq_out;
  std::uint64_t as_of = 0;
  ASSERT_TRUE(rpc::decode_range_query(bytes, &rq_out, &as_of).ok());
  EXPECT_EQ(as_of, rpc::as_of_token(41));
  EXPECT_EQ(as_of - 1, 41u);  // the seq the serving shard scans at

  // Seq 0 (an empty shard's pin) must not collapse into "latest".
  bytes.clear();
  rpc::encode_range_query(rq, &bytes, rpc::as_of_token(0));
  ASSERT_TRUE(rpc::decode_range_query(bytes, &rq_out, &as_of).ok());
  EXPECT_NE(as_of, rpc::kAsOfLatest);

  metadata::TopKQuery tq;
  tq.dims = rq.dims;
  tq.point = la::Vector{0.5};
  tq.k = 3;
  bytes.clear();
  rpc::encode_topk_query(tq, &bytes, rpc::as_of_token(7));
  metadata::TopKQuery tq_out;
  ASSERT_TRUE(rpc::decode_topk_query(bytes, &tq_out, &as_of).ok());
  EXPECT_EQ(as_of, rpc::as_of_token(7));

  metadata::PointQuery pq;
  pq.filename = "/sub0/u001/app002/f0.dat";
  bytes.clear();
  rpc::encode_point_query(pq, &bytes, rpc::as_of_token(9));
  metadata::PointQuery pq_out;
  ASSERT_TRUE(rpc::decode_point_query(bytes, &pq_out, &as_of).ok());
  EXPECT_EQ(pq_out.filename, pq.filename);
  EXPECT_EQ(as_of, rpc::as_of_token(9));
}

TEST(Wire, V1QueryPayloadDecodesAsLatest) {
  // A v1 peer's payload simply ends before the as-of tail. Simulate by
  // chopping the trailing token off a v2 encoding.
  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset({metadata::Attr::kFileSize});
  rq.lo = la::Vector{0.0};
  rq.hi = la::Vector{1.0};
  std::vector<std::uint8_t> bytes;
  rpc::encode_range_query(rq, &bytes, rpc::as_of_token(5));
  bytes.resize(bytes.size() - 8);
  metadata::RangeQuery rq_out;
  std::uint64_t as_of = 99;
  ASSERT_TRUE(rpc::decode_range_query(bytes, &rq_out, &as_of).ok());
  EXPECT_EQ(as_of, rpc::kAsOfLatest);
  ASSERT_EQ(rq_out.dims.size(), 1u);
}

TEST(Wire, SnapshotLeaseRoundTripAndMethods) {
  rpc::SnapshotLease lease;
  lease.lease_id = 17;
  lease.seq = 4242;
  std::vector<std::uint8_t> bytes;
  rpc::encode_snapshot_lease(lease, &bytes);
  rpc::SnapshotLease out;
  ASSERT_TRUE(rpc::decode_snapshot_lease(bytes, &out).ok());
  EXPECT_EQ(out.lease_id, 17u);
  EXPECT_EQ(out.seq, 4242u);

  // The v2 methods are inside the decoder's accepted range...
  rpc::Frame f = make_request(rpc::Method::kSnapPin);
  rpc::Frame decoded;
  ASSERT_TRUE(rpc::decode_frame(rpc::encode_frame(f), &decoded).ok());
  EXPECT_EQ(decoded.method, rpc::Method::kSnapPin);
  f.method = rpc::Method::kSnapRelease;
  ASSERT_TRUE(rpc::decode_frame(rpc::encode_frame(f), &decoded).ok());
  // ...as are the v3 replication methods...
  f.method = rpc::Method::kReplAppend;
  ASSERT_TRUE(rpc::decode_frame(rpc::encode_frame(f), &decoded).ok());
  EXPECT_EQ(decoded.method, rpc::Method::kReplAppend);
  f.method = rpc::Method::kReplBootstrap;
  ASSERT_TRUE(rpc::decode_frame(rpc::encode_frame(f), &decoded).ok());
  // ...and one past them is still rejected.
  std::vector<std::uint8_t> raw = rpc::encode_frame(f);
  raw[7] = static_cast<std::uint8_t>(rpc::Method::kReplBootstrap) + 1;
  EXPECT_EQ(rpc::decode_frame(raw, &decoded).code(),
            db::StatusCode::kCorruption);
}

TEST(Wire, BatchPayloadRoundTrip) {
  std::vector<rpc::BatchOp> ops(3);
  ops[0].is_put = true;
  ops[0].file = make_file(1);
  ops[1].is_put = false;
  ops[1].name = "/sub0/u001/app002/f1.dat";
  ops[2].is_put = true;
  ops[2].file = make_file(2);
  std::vector<std::uint8_t> bytes;
  rpc::encode_batch(ops, &bytes);
  std::vector<rpc::BatchOp> out;
  ASSERT_TRUE(rpc::decode_batch(bytes, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].is_put);
  EXPECT_EQ(out[0].file.id, 1u);
  EXPECT_FALSE(out[1].is_put);
  EXPECT_EQ(out[1].name, ops[1].name);
}

TEST(Wire, QueryResultRoundTrip) {
  db::QueryResult r;
  r.kind = db::QueryKind::kTopK;
  r.ids = {5, 9};
  r.hits = {{0.25, 5}, {1.5, 9}};
  r.stats.latency_s = 0.125;
  r.stats.messages = 7;
  r.stats.records_scanned = 99;
  std::vector<std::uint8_t> bytes;
  rpc::encode_query_result(r, &bytes);
  db::QueryResult out;
  ASSERT_TRUE(rpc::decode_query_result(bytes, &out).ok());
  EXPECT_EQ(out.kind, db::QueryKind::kTopK);
  EXPECT_EQ(out.ids, r.ids);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_DOUBLE_EQ(out.hits[0].first, 0.25);
  EXPECT_EQ(out.stats.messages, 7u);
  EXPECT_EQ(out.stats.records_scanned, 99u);
}

TEST(Wire, ShardStatsRoundTrip) {
  rpc::ShardStats s;
  s.applied_puts = 10;
  s.dup_hits = 3;
  s.total_files = 1234;
  std::vector<std::uint8_t> bytes;
  rpc::encode_shard_stats(s, &bytes);
  rpc::ShardStats out;
  ASSERT_TRUE(rpc::decode_shard_stats(bytes, &out).ok());
  EXPECT_EQ(out.applied_puts, 10u);
  EXPECT_EQ(out.dup_hits, 3u);
  EXPECT_EQ(out.total_files, 1234u);
}

// ---- in-process transport ---------------------------------------------------

rpc::Handler echo_handler(std::uint32_t shard) {
  return [shard](const rpc::Frame& req) {
    rpc::Frame resp;
    resp.type = rpc::MsgType::kResponse;
    resp.method = req.method;
    resp.shard = shard;
    resp.client_id = req.client_id;
    resp.seq = req.seq;
    resp.payload = req.payload;
    return resp;
  };
}

TEST(Inproc, BindCallUnbind) {
  rpc::InprocNetwork net;
  auto channel = net.Connect(0);

  // Channel to a never-bound shard: usable, just unavailable.
  rpc::Frame resp;
  EXPECT_TRUE(channel->Call(make_request(rpc::Method::kPing), &resp)
                  .IsUnavailable());

  net.Bind(0, echo_handler(0));
  EXPECT_TRUE(net.IsBound(0));
  rpc::Frame req = make_request(rpc::Method::kPing);
  rpc::encode_message("hello", &req.payload);
  ASSERT_TRUE(channel->Call(req, &resp).ok());
  EXPECT_EQ(resp.type, rpc::MsgType::kResponse);
  EXPECT_EQ(resp.seq, req.seq);
  std::string echoed;
  ASSERT_TRUE(rpc::decode_message(resp.payload, &echoed).ok());
  EXPECT_EQ(echoed, "hello");

  // Crash: the SAME channel sees kUnavailable, then recovery after rebind.
  net.Unbind(0);
  EXPECT_FALSE(net.IsBound(0));
  EXPECT_TRUE(channel->Call(req, &resp).IsUnavailable());
  net.Bind(0, echo_handler(0));
  EXPECT_TRUE(channel->Call(req, &resp).ok());
}

// ---- fault channel ----------------------------------------------------------

TEST(Fault, AlwaysDropRequestIsTimeout) {
  rpc::InprocNetwork net;
  net.Bind(0, echo_handler(0));
  rpc::FaultSpec spec;
  spec.drop_request_p = 1.0;
  rpc::FaultChannel faulty(net.Connect(0), spec);
  rpc::Frame resp;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(faulty.Call(make_request(rpc::Method::kPing), &resp)
                    .IsTimeout());
  }
  EXPECT_EQ(faulty.counts().dropped_requests, 10u);
}

TEST(Fault, DuplicateDeliversTwice) {
  rpc::InprocNetwork net;
  std::atomic<int> deliveries{0};
  net.Bind(0, [&deliveries](const rpc::Frame& req) {
    ++deliveries;
    return echo_handler(0)(req);
  });
  rpc::FaultSpec spec;
  spec.duplicate_p = 1.0;
  rpc::FaultChannel faulty(net.Connect(0), spec);
  rpc::Frame resp;
  ASSERT_TRUE(faulty.Call(make_request(rpc::Method::kPing), &resp).ok());
  EXPECT_EQ(deliveries.load(), 2);
  EXPECT_EQ(faulty.counts().duplicated, 1u);
}

TEST(Fault, MixedFaultsAreSeedDeterministic) {
  rpc::FaultSpec spec;
  spec.duplicate_p = 0.2;
  spec.drop_request_p = 0.2;
  spec.drop_response_p = 0.2;
  spec.seed = 99;
  auto run = [&spec] {
    rpc::InprocNetwork net;
    net.Bind(0, echo_handler(0));
    rpc::FaultChannel faulty(net.Connect(0), spec);
    rpc::Frame resp;
    for (int i = 0; i < 200; ++i) {
      (void)faulty.Call(make_request(rpc::Method::kPing), &resp);
    }
    return faulty.counts();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.dropped_responses, b.dropped_responses);
  EXPECT_GT(a.duplicated + a.dropped_requests + a.dropped_responses, 0u);
}

// ---- socket transport -------------------------------------------------------

TEST(Socket, LoopbackRoundTrip) {
  rpc::SocketServer server;
  ASSERT_TRUE(server.Start("127.0.0.1", 0, echo_handler(1)).ok());
  ASSERT_NE(server.port(), 0);

  rpc::SocketChannel channel("127.0.0.1", server.port());
  rpc::Frame req = make_request(rpc::Method::kPing);
  rpc::encode_message("over tcp", &req.payload);
  rpc::Frame resp;
  ASSERT_TRUE(channel.Call(req, &resp).ok());
  EXPECT_EQ(resp.shard, 1u);
  std::string echoed;
  ASSERT_TRUE(rpc::decode_message(resp.payload, &echoed).ok());
  EXPECT_EQ(echoed, "over tcp");
  server.Stop();
}

TEST(Socket, ConcurrentClients) {
  rpc::SocketServer server;
  ASSERT_TRUE(server.Start("127.0.0.1", 0, echo_handler(0)).ok());
  std::vector<std::thread> clients;
  std::atomic<int> ok_calls{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &ok_calls, c] {
      rpc::SocketChannel channel("127.0.0.1", server.port());
      for (int i = 0; i < 25; ++i) {
        rpc::Frame req = make_request(rpc::Method::kPing);
        req.client_id = static_cast<std::uint64_t>(c);
        req.seq = static_cast<std::uint64_t>(i);
        rpc::Frame resp;
        if (channel.Call(req, &resp).ok() && resp.seq == req.seq) ++ok_calls;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_calls.load(), 100);
  server.Stop();
}

TEST(Socket, ReconnectAfterServerRestart) {
  rpc::SocketServer first;
  ASSERT_TRUE(first.Start("127.0.0.1", 0, echo_handler(0)).ok());
  const std::uint16_t port = first.port();
  rpc::SocketChannel channel("127.0.0.1", port);
  rpc::Frame resp;
  ASSERT_TRUE(channel.Call(make_request(rpc::Method::kPing), &resp).ok());

  first.Stop();
  EXPECT_FALSE(channel.Call(make_request(rpc::Method::kPing), &resp).ok());

  rpc::SocketServer second;
  ASSERT_TRUE(second.Start("127.0.0.1", port, echo_handler(0)).ok());
  // The channel reconnects lazily: the restarted server is reachable
  // without constructing a new channel.
  EXPECT_TRUE(channel.Call(make_request(rpc::Method::kPing), &resp).ok());
  second.Stop();
}

#if defined(__unix__) || defined(__APPLE__)

// A server that answers the FIRST connection with a deliberately partial
// frame and then stalls; every later connection gets a full echo. Proves
// the channel's recv path treats a mid-frame timeout as a dead stream —
// tear down and reconnect — rather than resuming the read and splicing
// the stale half-frame onto the next response.
TEST(Socket, PartialFrameThenTimeoutTearsDownAndReconnects) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ASSERT_EQ(::listen(listen_fd, 4), 0);

  // Reads one full request frame off `fd` (header, then payload).
  const auto read_request = [](int fd) {
    std::vector<std::uint8_t> header(rpc::kFrameHeaderBytes);
    std::size_t got = 0;
    while (got < header.size()) {
      const ssize_t n = ::recv(fd, header.data() + got, header.size() - got,
                               0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    std::uint32_t payload_len = 0;
    if (!rpc::peek_payload_len(header.data(), header.size(), &payload_len)
             .ok()) {
      return false;
    }
    std::vector<std::uint8_t> payload(payload_len);
    got = 0;
    while (got < payload.size()) {
      const ssize_t n = ::recv(fd, payload.data() + got,
                               payload.size() - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  };

  std::thread server([&] {
    rpc::Frame resp;
    resp.type = rpc::MsgType::kResponse;
    resp.method = rpc::Method::kPing;
    const std::vector<std::uint8_t> full = rpc::encode_frame(resp);

    // Connection 1: answer with 10 bytes of a valid frame, then stall.
    const int c1 = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c1, 0);
    ASSERT_TRUE(read_request(c1));
    ASSERT_EQ(::send(c1, full.data(), 10, 0), 10);
    // Stall until the client gives up and closes (recv sees EOF).
    std::uint8_t scratch;
    while (::recv(c1, &scratch, 1, 0) > 0) {
    }
    ::close(c1);

    // Connection 2: a well-behaved echo.
    const int c2 = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(c2, 0);
    ASSERT_TRUE(read_request(c2));
    ASSERT_EQ(::send(c2, full.data(), full.size(), 0),
              static_cast<ssize_t>(full.size()));
    ::close(c2);
  });

  rpc::SocketChannel channel("127.0.0.1", port, /*recv_timeout_ms=*/300);
  rpc::Frame resp;
  // Mid-frame stall: the call must fail with kTimeout, not hang or
  // misparse — and the channel must drop the connection.
  EXPECT_TRUE(channel.Call(make_request(rpc::Method::kPing), &resp)
                  .IsTimeout());
  // The very next call runs on a FRESH connection and succeeds; a channel
  // that resumed the old stream would read the stale half-frame first and
  // fail the magic/CRC checks instead.
  EXPECT_TRUE(channel.Call(make_request(rpc::Method::kPing), &resp).ok());

  server.join();
  ::close(listen_fd);
}

#endif  // __unix__ || __APPLE__

TEST(Socket, ConnectFailureIsUnavailable) {
  rpc::SocketChannel channel("127.0.0.1", 1);  // nothing listens on port 1
  rpc::Frame resp;
  EXPECT_TRUE(channel.Call(make_request(rpc::Method::kPing), &resp)
                  .IsUnavailable());
}

}  // namespace
