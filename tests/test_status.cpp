// db::Status: the exception-free error vocabulary of the public API —
// code/message round trips, the networked-tier codes PR 7 added
// (kUnavailable, kTimeout, kWrongShard), and the FromCode bridge the wire
// format uses to rehydrate a status byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "smartstore/status.h"

namespace {

using namespace smartstore;

TEST(Status, DefaultIsOk) {
  db::Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), db::StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, EveryCodeHasADistinctName) {
  std::set<std::string> names;
  for (std::uint8_t c = 0; c < db::kNumStatusCodes; ++c) {
    const char* name =
        db::status_code_name(static_cast<db::StatusCode>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "code " << int(c) << " missing a name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate status name: " << name;
  }
}

TEST(Status, NetworkedTierCodes) {
  const db::Status unavailable = db::Status::Unavailable("shard down");
  EXPECT_FALSE(unavailable.ok());
  EXPECT_TRUE(unavailable.IsUnavailable());
  EXPECT_EQ(unavailable.code(), db::StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.message(), "shard down");

  const db::Status timeout = db::Status::Timeout("no answer");
  EXPECT_TRUE(timeout.IsTimeout());
  EXPECT_FALSE(timeout.IsUnavailable());

  const db::Status wrong = db::Status::WrongShard("bucket moved");
  EXPECT_TRUE(wrong.IsWrongShard());
  EXPECT_EQ(std::string(db::status_code_name(wrong.code())), "WrongShard");
}

TEST(Status, FromCodeRoundTripsEveryCode) {
  for (std::uint8_t c = 0; c < db::kNumStatusCodes; ++c) {
    const auto code = static_cast<db::StatusCode>(c);
    const db::Status s = db::Status::FromCode(code, "m");
    EXPECT_EQ(s.code(), code);
    if (code == db::StatusCode::kOk) {
      EXPECT_TRUE(s.ok());
      EXPECT_TRUE(s.message().empty()) << "OK carries no message";
    } else {
      EXPECT_EQ(s.message(), "m");
    }
  }
}

TEST(Status, FromCodeRejectsUnknownByte) {
  // A status byte from a newer peer (or garbage) degrades to kUnknown
  // instead of minting an out-of-range enum value.
  const db::Status s = db::Status::FromCode(
      static_cast<db::StatusCode>(db::kNumStatusCodes), "future code");
  EXPECT_EQ(s.code(), db::StatusCode::kUnknown);
  EXPECT_EQ(s.message(), "future code");
}

TEST(Status, ToStringCarriesCodeAndMessage) {
  const db::Status s = db::Status::Timeout("deadline");
  const std::string text = s.ToString();
  EXPECT_NE(text.find("Timeout"), std::string::npos) << text;
  EXPECT_NE(text.find("deadline"), std::string::npos) << text;
}

}  // namespace
