// smartstore::db::Store facade: the failure modes an embedding file system
// has to survive — corrupt directories, double-opens, use-after-Close,
// Checkpoint racing Close — plus the happy-path contracts (open/recover
// round trip, WriteBatch ordering, query validation, properties).
//
// Runs under ASan and TSan in CI (the tsan preset filter includes db_api):
// the racing suites are the interesting targets there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "persist/fault.h"
#include "smartstore/smartstore.h"
#include "trace/synth.h"

namespace {

using namespace smartstore;

std::filesystem::path temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("smartstore_test_db_") + name);
  std::filesystem::remove_all(dir);
  return dir;
}

metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = "file_" + std::to_string(id) + ".dat";
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
    f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 1000);
  return f;
}

db::Options small_options() {
  db::Options o;
  o.num_units = 6;
  o.seed = 11;
  return o;
}

std::unique_ptr<db::Store> open_or_die(const db::Options& o,
                                       const std::string& path) {
  auto opened = db::Store::Open(o, path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

// ---- Options validation -----------------------------------------------------

TEST(DbApi, OpenRejectsBadOptions) {
  db::Options o = small_options();
  o.num_units = 0;
  EXPECT_TRUE(db::Store::Open(o, "x").status().IsInvalidArgument());

  o = small_options();
  EXPECT_TRUE(db::Store::Open(o, "").status().IsInvalidArgument());

  o = small_options();
  o.checkpoint_every = 10;
  o.enable_wal = false;
  EXPECT_TRUE(db::Store::Open(o, "x").status().IsInvalidArgument());

  o = small_options();
  o.ingest_threads = 0;
  EXPECT_TRUE(db::Store::Open(o, "x").status().IsInvalidArgument());
}

// ---- open / recover round trip ---------------------------------------------

TEST(DbApi, FreshOpenPutCheckpointReopen) {
  const auto dir = temp_dir("roundtrip");
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_FALSE(store->recovery_info().recovered);
    for (std::uint64_t i = 0; i < 40; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_TRUE(store->recovery_info().recovered);
    // The checkpoint subsumed every record: nothing left to replay.
    EXPECT_EQ(store->recovery_info().wal_records, 0u);
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(v, "40");
    db::QueryRequest q = db::QueryRequest::Point("file_7.dat");
    q.routing = db::Routing::kOnline;
    auto r = store->Query(q);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
  }
  std::filesystem::remove_all(dir);
}

TEST(DbApi, CrashBeforeFirstCheckpointReplaysWal) {
  const auto dir = temp_dir("nosnap");
  {
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 25; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Flush().ok());
    store->Abandon();  // crash: WAL shards exist, no snapshot yet
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_EQ(store->recovery_info().wal_records, 25u);
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(v, "25");
  }
  std::filesystem::remove_all(dir);
}

TEST(DbApi, BulkloadSurvivesCrashBeforeExplicitCheckpoint) {
  // Bulkload is not WAL-logged, so it checkpoints before returning: a
  // crash after Bulkload + a few Puts must recover population AND puts —
  // not replay the puts onto an empty base image.
  const auto dir = temp_dir("bulk_crash");
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 5,
                                                  /*downscale=*/50);
  {
    auto store = open_or_die(small_options(), dir.string());
    ASSERT_TRUE(store->Bulkload(tr.files()).ok());
    for (std::uint64_t i = 0; i < 15; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Flush().ok());
    store->Abandon();  // crash: no explicit Checkpoint ever ran
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_TRUE(store->recovery_info().recovered);
    EXPECT_EQ(store->recovery_info().wal_records, 15u);
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(std::stoull(v), tr.files().size() + 15);
  }
  std::filesystem::remove_all(dir);
}

TEST(DbApi, BulkloadRequiresEmptyStore) {
  const auto dir = temp_dir("bulkload");
  const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 5,
                                                  /*downscale=*/50);
  auto store = open_or_die(small_options(), dir.string());
  ASSERT_TRUE(store->Put(make_file(1)).ok());
  EXPECT_TRUE(store->Bulkload(tr.files()).IsFailedPrecondition());
  std::filesystem::remove_all(dir);
}

// ---- corrupt directory ------------------------------------------------------

TEST(DbApi, OpenCorruptSnapshotIsTypedCorruption) {
  const auto dir = temp_dir("corrupt");
  {
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 10; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  // Flip a byte in the middle of the checkpoint image: a section checksum
  // fails. The first incremental checkpoint folds into ckpt/base-1.bin
  // (there is no legacy snapshot.bin to adopt on a fresh store).
  const auto snap = dir / "ckpt" / "base-1.bin";
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    ASSERT_GT(size, 64);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  auto opened = db::Store::Open(small_options(), dir.string());
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(DbApi, OpenGarbageSnapshotIsCorruptionNotCrash) {
  const auto dir = temp_dir("garbage");
  std::filesystem::create_directories(dir);
  {
    std::ofstream f(dir / "snapshot.bin", std::ios::binary);
    f << "this is not a snapshot at all";
  }
  auto opened = db::Store::Open(small_options(), dir.string());
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(DbApi, OpenMissingSnapshotWithoutCreateIsNotFound) {
  const auto dir = temp_dir("missing");
  db::Options o = small_options();
  o.create_if_missing = false;
  auto opened = db::Store::Open(o, dir.string());
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsNotFound()) << opened.status().ToString();
  std::filesystem::remove_all(dir);
}

// ---- double-open (LOCK file) ------------------------------------------------

TEST(DbApi, DoubleOpenIsBusy) {
  const auto dir = temp_dir("lock");
  auto first = open_or_die(small_options(), dir.string());
  auto second = db::Store::Open(small_options(), dir.string());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsBusy()) << second.status().ToString();

  // Close releases the lock; the directory opens cleanly again.
  ASSERT_TRUE(first->Close().ok());
  auto third = db::Store::Open(small_options(), dir.string());
  EXPECT_TRUE(third.ok()) << third.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(DbApi, AbandonReleasesLock) {
  const auto dir = temp_dir("lock_abandon");
  auto first = open_or_die(small_options(), dir.string());
  ASSERT_TRUE(first->Put(make_file(1)).ok());
  first->Abandon();  // crash simulation must not wedge the directory
  auto second = db::Store::Open(small_options(), dir.string());
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  std::filesystem::remove_all(dir);
}

// ---- use after Close --------------------------------------------------------

TEST(DbApi, OperationsAfterCloseFailTyped) {
  const auto dir = temp_dir("after_close");
  auto store = open_or_die(small_options(), dir.string());
  ASSERT_TRUE(store->Put(make_file(1)).ok());
  ASSERT_TRUE(store->Close().ok());
  ASSERT_TRUE(store->Close().ok());  // idempotent

  EXPECT_TRUE(store->Put(make_file(2)).IsFailedPrecondition());
  EXPECT_TRUE(store->Delete("file_1.dat").IsFailedPrecondition());
  db::WriteBatch batch;
  batch.Put(make_file(3));
  EXPECT_TRUE(store->Write(std::move(batch)).IsFailedPrecondition());
  EXPECT_TRUE(
      store->Query(db::QueryRequest::Point("x")).status()
          .IsFailedPrecondition());
  EXPECT_TRUE(store->Checkpoint().IsFailedPrecondition());
  EXPECT_TRUE(store->Flush().IsFailedPrecondition());
  std::filesystem::remove_all(dir);
}

// ---- WriteBatch semantics ---------------------------------------------------

TEST(DbApi, WriteBatchAppliesInOrder) {
  const auto dir = temp_dir("batch");
  db::Options o = small_options();
  o.ingest_threads = 4;  // exercise the fan-out path too
  auto store = open_or_die(o, dir.string());

  db::WriteBatch batch;
  for (std::uint64_t i = 0; i < 300; ++i) batch.Put(make_file(i));
  batch.Delete("file_7.dat");   // deletes order against the preceding puts
  batch.Delete("file_250.dat");
  batch.Delete("no_such_file"); // absent: not an error inside a batch
  ASSERT_TRUE(store->Write(std::move(batch)).ok());

  std::string v;
  ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
  EXPECT_EQ(v, "298");

  db::QueryRequest q = db::QueryRequest::Point("file_7.dat");
  q.routing = db::Routing::kOnline;
  auto r = store->Query(q);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);

  // Standalone Delete of an absent name IS typed NotFound.
  EXPECT_TRUE(store->Delete("no_such_file").IsNotFound());
  std::filesystem::remove_all(dir);
}

TEST(DbApi, QueryValidation) {
  auto opened = db::Store::Open([] {
    db::Options o;
    o.num_units = 6;
    o.seed = 11;
    o.in_memory = true;
    return o;
  }(), "");
  ASSERT_TRUE(opened.ok());
  auto& store = *opened;

  EXPECT_TRUE(store->Query(db::QueryRequest::Point(""))
                  .status().IsInvalidArgument());

  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset::all();
  rq.lo = la::Vector(1, 0.0);  // wrong arity vs dims
  rq.hi = la::Vector(1, 1.0);
  EXPECT_TRUE(store->Query(db::QueryRequest::Range(rq))
                  .status().IsInvalidArgument());

  metadata::TopKQuery tq;
  tq.dims = metadata::AttrSubset::all();
  tq.point = la::Vector(tq.dims.size(), 0.0);
  tq.k = 0;
  EXPECT_TRUE(store->Query(db::QueryRequest::TopK(tq))
                  .status().IsInvalidArgument());

  // In-memory stores refuse durability operations, typed.
  EXPECT_TRUE(store->Checkpoint().IsFailedPrecondition());
  EXPECT_TRUE(store->Flush().IsFailedPrecondition());
}

// ---- fault injection through the boundary -----------------------------------

TEST(DbApi, InjectedFaultPoisonsStoreAndRecovers) {
  const auto dir = temp_dir("fault");
  {
    db::Options o = small_options();
    o.group_commit = 2;
    auto store = open_or_die(o, dir.string());
    persist::fault_arm(4);  // die at the 4th persistence write boundary
    db::Status last;
    std::size_t acked = 0;
    for (std::uint64_t i = 0; i < 50; ++i) {
      last = store->Put(make_file(i));
      if (!last.ok()) break;
      ++acked;
    }
    persist::fault_disarm();
    ASSERT_TRUE(last.IsFaultInjected()) << last.ToString();
    ASSERT_LT(acked, 50u);
    // Poisoned: every later operation reports the crash.
    EXPECT_TRUE(store->Put(make_file(99)).IsFaultInjected());
    EXPECT_TRUE(store->Checkpoint().IsFaultInjected());
    // Close releases resources without committing the abandoned tail; the
    // crash itself was already reported by the Put that hit it.
    EXPECT_TRUE(store->Close().ok());
  }
  {
    // The directory recovers to a consistent prefix of acked inserts.
    auto store = open_or_die(small_options(), dir.string());
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_LE(std::stoull(v), 50u);
  }
  std::filesystem::remove_all(dir);
}

// ---- Checkpoint racing Close ------------------------------------------------

TEST(DbApi, CheckpointRacingCloseIsClean) {
  for (int round = 0; round < 8; ++round) {
    const auto dir = temp_dir("ckpt_close");
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 60; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());

    std::atomic<bool> go{false};
    std::thread checkpointer([&] {
      while (!go.load(std::memory_order_acquire)) {}
      // Either the checkpoint wins (OK) or Close got there first
      // (FailedPrecondition) — never a crash, hang, or torn directory.
      const db::Status s = store->Checkpoint();
      EXPECT_TRUE(s.ok() || s.IsFailedPrecondition()) << s.ToString();
    });
    std::thread closer([&] {
      while (!go.load(std::memory_order_acquire)) {}
      const db::Status s = store->Close();
      EXPECT_TRUE(s.ok()) << s.ToString();
    });
    go.store(true, std::memory_order_release);
    checkpointer.join();
    closer.join();

    // Whatever interleaving happened, the directory must reopen cleanly.
    auto reopened = db::Store::Open(small_options(), dir.string());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::string v;
    ASSERT_TRUE((*reopened)->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(v, "60");
    std::filesystem::remove_all(dir);
  }
}

TEST(DbApi, IntrospectionRacingCloseIsClean) {
  // GetProperty / GetCheckpointInfo dereference the WAL and checkpointer,
  // which Close frees — the reads must hold the lifecycle lock, or this
  // is a use-after-free under TSan/ASan.
  for (int round = 0; round < 8; ++round) {
    const auto dir = temp_dir("props_close");
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 40; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());

    std::atomic<bool> go{false};
    std::thread reader([&] {
      while (!go.load(std::memory_order_acquire)) {}
      std::string v;
      for (int i = 0; i < 50; ++i) {
        store->GetProperty("smartstore.wal.frontier", &v);
        store->GetProperty("smartstore.wal.committed-records", &v);
        (void)store->GetCheckpointInfo();
      }
    });
    std::thread closer([&] {
      while (!go.load(std::memory_order_acquire)) {}
      EXPECT_TRUE(store->Close().ok());
    });
    go.store(true, std::memory_order_release);
    reader.join();
    closer.join();
    std::filesystem::remove_all(dir);
  }
}

// ---- writers racing Close (lifecycle exclusion) -----------------------------

TEST(DbApi, WritersRacingCloseNeverTearState) {
  const auto dir = temp_dir("write_close");
  auto store = open_or_die(small_options(), dir.string());
  std::atomic<std::uint64_t> acked{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 400; ++i) {
        const db::Status s =
            store->Put(make_file(static_cast<std::uint64_t>(t) * 1000 + i));
        if (s.IsFailedPrecondition()) return;  // Close won
        ASSERT_TRUE(s.ok()) << s.ToString();
        acked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let some writes land, then close under the writers.
  while (acked.load(std::memory_order_relaxed) < 50) std::this_thread::yield();
  EXPECT_TRUE(store->Close().ok());
  for (auto& w : writers) w.join();

  // Every acknowledged write is durable: Close group-committed the tail.
  auto reopened = db::Store::Open(small_options(), dir.string());
  ASSERT_TRUE(reopened.ok());
  std::string v;
  ASSERT_TRUE((*reopened)->GetProperty("smartstore.total-files", &v));
  EXPECT_EQ(std::stoull(v), acked.load());
  std::filesystem::remove_all(dir);
}

// ---- properties -------------------------------------------------------------

TEST(DbApi, PropertiesReportCountersAndSpace) {
  const auto dir = temp_dir("props");
  auto store = open_or_die(small_options(), dir.string());
  for (std::uint64_t i = 0; i < 20; ++i)
    ASSERT_TRUE(store->Put(make_file(i)).ok());
  db::QueryRequest q = db::QueryRequest::Point("file_3.dat");
  q.routing = db::Routing::kOnline;
  ASSERT_TRUE(store->Query(q).ok());

  std::string v;
  EXPECT_TRUE(store->GetProperty("smartstore.counters.puts", &v));
  EXPECT_EQ(v, "20");
  EXPECT_TRUE(store->GetProperty("smartstore.counters.point-queries", &v));
  EXPECT_EQ(v, "1");
  EXPECT_TRUE(store->GetProperty("smartstore.counters.point-hits", &v));
  EXPECT_EQ(v, "1");
  EXPECT_TRUE(store->GetProperty("smartstore.num-units", &v));
  EXPECT_EQ(v, "6");
  EXPECT_TRUE(store->GetProperty("smartstore.invariants-ok", &v));
  EXPECT_EQ(v, "1");
  EXPECT_TRUE(store->GetProperty("smartstore.space.total-bytes", &v));
  EXPECT_GT(std::stoull(v), 0u);
  EXPECT_TRUE(store->GetProperty("smartstore.wal.shards", &v));
  EXPECT_EQ(v, "6");
  EXPECT_TRUE(store->GetProperty("smartstore.wal.frontier", &v));
  EXPECT_FALSE(v.empty());
  EXPECT_FALSE(store->GetProperty("smartstore.no-such-property", &v));
  std::filesystem::remove_all(dir);
}

// ---- MVCC snapshot reads / time travel --------------------------------------

db::QueryRequest select_all() {
  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset({metadata::Attr::kFileSize});
  rq.lo = {-1e30};
  rq.hi = {1e30};
  return db::QueryRequest::Range(std::move(rq));
}

TEST(DbApi, PinnedSnapshotScanBitIdenticalUnderWriters) {
  db::Options o = small_options();
  o.in_memory = true;
  auto opened = db::Store::Open(o, "");
  ASSERT_TRUE(opened.ok());
  auto& store = *opened;
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(store->Put(make_file(i)).ok());

  auto snap = store->GetSnapshot();
  ASSERT_TRUE(snap.ok());
  const db::ReadOptions at_pin{snap->sequence()};
  auto first = store->Query(select_all(), at_pin);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->ids.size(), 100u);

  // A writer streams inserts while the pinned scan replays: every replay
  // must be bit-identical to the first.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> acked{0};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 400 && !done.load(std::memory_order_acquire);
         ++i) {
      EXPECT_TRUE(store->Put(make_file(10000 + i)).ok());
      acked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int round = 0; round < 20; ++round) {
    auto replay = store->Query(select_all(), at_pin);
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->ids, first->ids) << "pinned scan diverged, round "
                                       << round;
  }
  done.store(true, std::memory_order_release);
  writer.join();

  // The same scan at the latest seq sees everything the writer landed.
  auto latest = store->Query(select_all(), db::ReadOptions{});
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->ids.size(), 100u + acked.load());

  // Quiesced oracle: a fresh store holding exactly the pinned population
  // returns the same canonical ids (snapshot scans are placement-free).
  auto oracle_opened = db::Store::Open(o, "");
  ASSERT_TRUE(oracle_opened.ok());
  auto& oracle = *oracle_opened;
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(oracle->Put(make_file(i)).ok());
  auto want = oracle->Query(select_all(), db::ReadOptions{});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(first->ids, want->ids);
}

TEST(DbApi, QueryAsOfReplaysAcrossCheckpointBoundary) {
  // query-as-of(seq) must replay a historical view even when the seq
  // predates a checkpoint AND a restart: the checkpoint image persists
  // per-record commit seqs, and WAL replay re-stamps the tail.
  const auto dir = temp_dir("time_travel");
  std::uint64_t seq_a = 0;
  {
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 30; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    seq_a = store->LatestSequence();
    ASSERT_GT(seq_a, 0u);
    ASSERT_TRUE(store->Checkpoint().ok());
    for (std::uint64_t i = 100; i < 130; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_TRUE(store->recovery_info().recovered);
    EXPECT_GE(store->LatestSequence(), seq_a);

    auto past = store->Query(select_all(), db::ReadOptions{seq_a});
    ASSERT_TRUE(past.ok());
    std::vector<metadata::FileId> want;
    for (std::uint64_t i = 0; i < 30; ++i) want.push_back(i);
    EXPECT_EQ(past->ids, want);  // batch A only, in canonical order

    auto now = store->Query(select_all(), db::ReadOptions{});
    ASSERT_TRUE(now.ok());
    EXPECT_EQ(now->ids.size(), 60u);

    // Point time travel agrees: batch B exists now, not at seq_a.
    auto then_pt = store->Query(db::QueryRequest::Point("file_100.dat"),
                                db::ReadOptions{seq_a});
    ASSERT_TRUE(then_pt.ok());
    EXPECT_FALSE(then_pt->found);
    auto now_pt = store->Query(db::QueryRequest::Point("file_100.dat"),
                               db::ReadOptions{});
    ASSERT_TRUE(now_pt.ok());
    EXPECT_TRUE(now_pt->found);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
