// The service tier's oracle suite: the partition map, the request-id
// dedup protocol (exactly-once apply under duplicating/dropping/
// reordering transports), stale-map redirect handling, scatter-gather
// query equivalence against a brute-force oracle, and the crash/recover
// theorem — no acknowledged write is ever lost across a shard power cut.
//
// Everything runs the real stack (Router -> wire format -> transport ->
// MetaService -> db::Store) inside one process, so ASan, TSan, and the
// lock-rank validator watch every test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "metadata/schema.h"
#include "rpc/fault.h"
#include "svc/cluster.h"
#include "svc/meta_service.h"
#include "svc/partition.h"
#include "svc/router.h"

namespace {

using namespace smartstore;

std::filesystem::path temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("smartstore_test_svc_") + name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Trace-shaped names: the app directory is the partition key, so files
/// sharing (sub, user, app) co-locate on one shard.
std::string trace_name(std::uint64_t id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/sub%u/u%03u/app%03u/f%06u.dat",
                static_cast<unsigned>(id % 2), static_cast<unsigned>(id % 7),
                static_cast<unsigned>(id % 13), static_cast<unsigned>(id));
  return buf;
}

metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = trace_name(id);
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) {
    f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 1000);
  }
  return f;
}

db::Options small_store_options() {
  db::Options o;
  o.num_units = 4;
  o.fanout = 4;
  o.seed = 7;
  // Online routing: point lookups are exact (offline routing tolerates
  // false negatives from stale replicas — the wrong default under an
  // oracle that asserts every acked record is findable).
  o.routing = db::Routing::kOnline;
  return o;
}

svc::ClusterOptions in_memory_cluster(std::uint32_t shards) {
  svc::ClusterOptions o;
  o.num_shards = shards;
  o.in_memory = true;
  o.store_options = small_store_options();
  o.map_version = 3;
  return o;
}

std::unique_ptr<svc::Cluster> start_or_die(const svc::ClusterOptions& o) {
  auto started = svc::Cluster::Start(o);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  return std::move(started).value();
}

svc::Router make_router(svc::Cluster& cluster, std::uint64_t client_id = 1,
                        int max_attempts = 8) {
  svc::RouterOptions o;
  o.client_id = client_id;
  o.max_attempts = max_attempts;
  o.backoff_init_us = 50;
  o.backoff_max_us = 20'000;
  return svc::Router(cluster.ConnectAll(), cluster.map(), o);
}

// ---- partition map ----------------------------------------------------------

TEST(Partition, KeyIsDirectoryPrefix) {
  EXPECT_EQ(svc::partition_key("/sub0/u001/app002/f1.dat"),
            "/sub0/u001/app002/");
  EXPECT_EQ(svc::partition_key("bare_name.dat"), "bare_name.dat");
  // Same app directory, same key -> same bucket -> same shard.
  EXPECT_EQ(svc::PartitionMap::bucket_of("/sub0/u001/app002/f1.dat"),
            svc::PartitionMap::bucket_of("/sub0/u001/app002/f999999.dat"));
}

TEST(Partition, RoundRobinIsValidAndCoversAllShards) {
  const auto map = svc::PartitionMap::RoundRobin(4, 9);
  EXPECT_TRUE(map.valid());
  EXPECT_EQ(map.version, 9u);
  std::vector<bool> seen(4, false);
  for (const std::uint32_t owner : map.bucket_owner) seen[owner] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Partition, EncodeDecodeRoundTrip) {
  const auto map = svc::PartitionMap::RoundRobin(8, 42);
  std::vector<std::uint8_t> bytes;
  svc::encode_partition_map(map, &bytes);
  svc::PartitionMap out;
  ASSERT_TRUE(svc::decode_partition_map(bytes, &out).ok());
  EXPECT_EQ(out.version, 42u);
  EXPECT_EQ(out.num_shards, 8u);
  EXPECT_EQ(out.bucket_owner, map.bucket_owner);
}

TEST(Partition, DecodeRejectsOutOfRangeOwner) {
  auto map = svc::PartitionMap::RoundRobin(2, 1);
  map.bucket_owner[5] = 7;  // no shard 7 in a 2-shard map
  std::vector<std::uint8_t> bytes;
  svc::encode_partition_map(map, &bytes);
  svc::PartitionMap out;
  EXPECT_EQ(svc::decode_partition_map(bytes, &out).code(),
            db::StatusCode::kCorruption);
}

// ---- meta service (direct, no router) ---------------------------------------

struct ServiceFixture {
  std::unique_ptr<db::Store> store;
  std::unique_ptr<svc::MetaService> service;

  explicit ServiceFixture(std::uint32_t shard_id, std::uint32_t num_shards) {
    db::Options store_options = small_store_options();
    store_options.in_memory = true;
    auto opened = db::Store::Open(store_options, "");
    EXPECT_TRUE(opened.ok());
    store = std::move(opened).value();
    svc::MetaServiceOptions service_options;
    service_options.shard_id = shard_id;
    service = std::make_unique<svc::MetaService>(
        store.get(), svc::PartitionMap::RoundRobin(num_shards, 5),
        service_options);
  }
};

rpc::Frame put_request(const metadata::FileMetadata& f, std::uint64_t seq) {
  rpc::Frame req;
  req.type = rpc::MsgType::kRequest;
  req.method = rpc::Method::kPut;
  req.client_id = 1;
  req.seq = seq;
  rpc::encode_file(f, &req.payload);
  return req;
}

TEST(MetaService, DedupAppliesExactlyOnce) {
  ServiceFixture fx(0, 1);  // one shard owns everything
  const rpc::Frame req = put_request(make_file(1), 10);

  const rpc::Frame first = fx.service->Handle(req);
  EXPECT_EQ(first.status, db::StatusCode::kOk);
  const rpc::Frame dup = fx.service->Handle(req);  // retry, same id
  EXPECT_EQ(dup.status, db::StatusCode::kOk);

  std::string value;
  ASSERT_TRUE(fx.store->GetProperty("smartstore.total-files", &value));
  EXPECT_EQ(value, "1");

  rpc::Frame stats_req;
  stats_req.method = rpc::Method::kStats;
  rpc::ShardStats stats;
  ASSERT_TRUE(rpc::decode_shard_stats(
                  fx.service->Handle(stats_req).payload, &stats)
                  .ok());
  EXPECT_EQ(stats.applied_puts, 1u);
  EXPECT_EQ(stats.dup_hits, 1u);
}

TEST(MetaService, ConcurrentDuplicatesOneApply) {
  ServiceFixture fx(0, 1);
  const rpc::Frame req = put_request(make_file(2), 77);
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      if (fx.service->Handle(req).status == db::StatusCode::kOk) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 4);  // every duplicate gets the published answer

  rpc::Frame stats_req;
  stats_req.method = rpc::Method::kStats;
  rpc::ShardStats stats;
  ASSERT_TRUE(rpc::decode_shard_stats(
                  fx.service->Handle(stats_req).payload, &stats)
                  .ok());
  EXPECT_EQ(stats.applied_puts, 1u);
  EXPECT_EQ(stats.dup_hits, 3u);
}

TEST(MetaService, WrongShardCarriesCurrentMap) {
  ServiceFixture fx(0, 2);
  // Find a name shard 0 does NOT own under the service's 2-shard map.
  metadata::FileMetadata foreign;
  for (std::uint64_t id = 0;; ++id) {
    foreign = make_file(id);
    if (fx.service->map().shard_of(foreign.name) != 0) break;
  }
  const rpc::Frame resp = fx.service->Handle(put_request(foreign, 1));
  EXPECT_EQ(resp.status, db::StatusCode::kWrongShard);
  svc::PartitionMap advertised;
  ASSERT_TRUE(svc::decode_partition_map(resp.payload, &advertised).ok());
  EXPECT_EQ(advertised.version, fx.service->map().version);

  std::string value;
  ASSERT_TRUE(fx.store->GetProperty("smartstore.total-files", &value));
  EXPECT_EQ(value, "0") << "a rejected request must not apply";
}

TEST(MetaService, DeleteIsIdempotent) {
  ServiceFixture fx(0, 1);
  ASSERT_EQ(fx.service->Handle(put_request(make_file(3), 1)).status,
            db::StatusCode::kOk);
  rpc::Frame del;
  del.type = rpc::MsgType::kRequest;
  del.method = rpc::Method::kDelete;
  del.client_id = 1;
  del.seq = 2;
  rpc::encode_name(make_file(3).name, &del.payload);
  EXPECT_EQ(fx.service->Handle(del).status, db::StatusCode::kOk);
  // Replay with a FRESH id (post-crash retry shape: dedup can't help) —
  // already-absent is still success.
  del.seq = 3;
  EXPECT_EQ(fx.service->Handle(del).status, db::StatusCode::kOk);
}

// ---- routed cluster: map equivalence under concurrent clients ---------------

TEST(Svc, FourShardMapEquivalenceUnderConcurrentClients) {
  auto cluster = start_or_die(in_memory_cluster(4));
  svc::Router router = make_router(*cluster);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 60;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&router, &failures, t] {
      // Disjoint id spaces; interleaved puts, overwrites, deletes.
      const std::uint64_t base = 1000 * (t + 1);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        metadata::FileMetadata f = make_file(base + i);
        if (!router.Put(f).ok()) ++failures;
        if (i % 3 == 0) {
          f.id = base + i + 500'000;  // overwrite: same name, new id
          if (!router.Put(f).ok()) ++failures;
        }
        if (i % 5 == 4) {
          if (!router.Delete(f.name).ok()) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Oracle: replay the same deterministic op stream into a std::map.
  std::map<std::string, std::uint64_t> expected;
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = 1000 * (t + 1);
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const metadata::FileMetadata f = make_file(base + i);
      expected[f.name] = f.id;
      if (i % 3 == 0) expected[f.name] = base + i + 500'000;
      if (i % 5 == 4) expected.erase(f.name);
    }
  }

  // Every expected record is found with the right id; shard counters sum
  // to exactly the expected population.
  for (const auto& [name, id] : expected) {
    auto r = router.Point(name);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << name;
    EXPECT_EQ(r->id, id) << name;
  }
  std::uint64_t hosted = 0;
  for (std::uint32_t s = 0; s < cluster->num_shards(); ++s) {
    auto stats = router.Stats(s);
    ASSERT_TRUE(stats.ok());
    hosted += stats->total_files;
  }
  EXPECT_EQ(hosted, expected.size());
  EXPECT_EQ(router.stats().redirects, 0u) << "map was authoritative";
}

// ---- retry semantics under an adversarial transport -------------------------

TEST(Svc, ExactlyOnceUnderFaultInjection) {
  auto cluster = start_or_die(in_memory_cluster(2));

  rpc::FaultSpec spec;
  spec.duplicate_p = 0.15;
  spec.drop_request_p = 0.15;
  spec.drop_response_p = 0.15;
  spec.delay_p = 0.10;
  spec.delay_us = 100;
  spec.seed = 1234;
  std::vector<std::shared_ptr<rpc::Channel>> channels;
  std::vector<const rpc::FaultChannel*> faults;
  for (std::uint32_t s = 0; s < cluster->num_shards(); ++s) {
    auto faulty =
        std::make_shared<rpc::FaultChannel>(cluster->Connect(s), spec);
    faults.push_back(faulty.get());
    channels.push_back(std::move(faulty));
  }
  svc::RouterOptions ro;
  ro.client_id = 9;
  ro.max_attempts = 64;  // drops are frequent; acks must still land
  ro.backoff_init_us = 10;
  ro.backoff_max_us = 2'000;
  svc::Router router(channels, cluster->map(), ro);

  constexpr std::uint64_t kPuts = 150;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&router, &failures, t] {
      for (std::uint64_t i = 0; i < kPuts / 3; ++i) {
        const std::uint64_t id = 10'000 * (t + 1) + i;
        if (!router.Put(make_file(id)).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0) << "every put must eventually ack";

  // The exactly-once theorem: kPuts distinct names were acked once each,
  // so the shards applied exactly kPuts puts — no matter how many times
  // the transport duplicated or redelivered them.
  std::uint64_t applied = 0, dup_hits = 0, hosted = 0;
  for (std::uint32_t s = 0; s < cluster->num_shards(); ++s) {
    auto stats = router.Stats(s);
    ASSERT_TRUE(stats.ok());
    applied += stats->applied_puts;
    dup_hits += stats->dup_hits;
    hosted += stats->total_files;
  }
  EXPECT_EQ(applied, kPuts);
  EXPECT_EQ(hosted, kPuts);

  std::uint64_t injected = 0;
  for (const auto* f : faults) {
    const auto c = f->counts();
    injected += c.duplicated + c.dropped_requests + c.dropped_responses;
  }
  EXPECT_GT(injected, 0u) << "the adversary must actually have fired";
  (void)dup_hits;  // informative: >0 whenever a drop-response fault fired

  // And the data is all there, once, with the right ids.
  for (int t = 0; t < 3; ++t) {
    for (std::uint64_t i = 0; i < kPuts / 3; ++i) {
      const std::uint64_t id = 10'000 * (t + 1) + i;
      auto r = router.Point(trace_name(id));
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r->found);
      EXPECT_EQ(r->id, id);
    }
  }
}

// ---- stale-map redirects ----------------------------------------------------

TEST(Svc, StaleMapRedirectsAndInstallsAuthoritativeMap) {
  svc::ClusterOptions co = in_memory_cluster(4);
  co.map_version = 7;
  auto cluster = start_or_die(co);

  // Seed the router with a WRONG, OLDER map: everything routes to shard 0.
  svc::RouterOptions ro;
  ro.client_id = 2;
  svc::Router router(cluster->ConnectAll(),
                     svc::PartitionMap::RoundRobin(1, 1), ro);

  for (std::uint64_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  const svc::RouterStats after = router.stats();
  EXPECT_GT(after.redirects, 0u) << "the stale map must have misrouted";
  EXPECT_EQ(after.map_installs, 1u) << "one redirect teaches the map";
  EXPECT_EQ(router.map().version, 7u);

  // Once corrected, routing is clean: more traffic, zero new redirects.
  for (std::uint64_t id = 40; id < 80; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  EXPECT_EQ(router.stats().redirects, after.redirects);

  // All 80 records landed on their owning shards despite the stale start.
  for (std::uint64_t id = 0; id < 80; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
  }
}

// ---- batch + scatter-gather -------------------------------------------------

TEST(Svc, BatchWriteSplitsAcrossShards) {
  auto cluster = start_or_die(in_memory_cluster(4));
  svc::Router router = make_router(*cluster);

  std::vector<rpc::BatchOp> ops;
  for (std::uint64_t id = 0; id < 50; ++id) {
    rpc::BatchOp op;
    op.is_put = true;
    op.file = make_file(id);
    ops.push_back(std::move(op));
  }
  // A few deletes of keys the same batch already wrote (order matters).
  for (std::uint64_t id = 0; id < 50; id += 10) {
    rpc::BatchOp op;
    op.is_put = false;
    op.name = trace_name(id);
    ops.push_back(std::move(op));
  }
  ASSERT_TRUE(router.Write(ops).ok());

  for (std::uint64_t id = 0; id < 50; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, id % 10 != 0) << trace_name(id);
  }
}

TEST(Svc, ScatterGatherMatchesSingleStore) {
  auto cluster = start_or_die(in_memory_cluster(4));
  svc::Router router = make_router(*cluster);

  // Reference oracle: ONE store fed the identical records. Shards hold
  // disjoint subsets, so the routed scatter+merge must reproduce exactly
  // the single store's range answer — this isolates the svc layer's
  // routing/merging from the core's query semantics.
  db::Options ref_options = small_store_options();
  ref_options.in_memory = true;
  auto ref_opened = db::Store::Open(ref_options, "");
  ASSERT_TRUE(ref_opened.ok());
  std::unique_ptr<db::Store> reference = std::move(ref_opened).value();

  std::vector<metadata::FileMetadata> files;
  for (std::uint64_t id = 0; id < 120; ++id) files.push_back(make_file(id));
  for (const auto& f : files) {
    ASSERT_TRUE(router.Put(f).ok());
    ASSERT_TRUE(reference->Put(f).ok());
  }

  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset(
      {metadata::Attr::kFileSize, metadata::Attr::kReadCount});
  rq.lo = {100.0, 0.0};
  rq.hi = {800.0, 900.0};

  auto routed = router.Range(rq);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  std::vector<metadata::FileId> got = routed->ids;
  std::sort(got.begin(), got.end());

  auto ref_result = reference->Query(db::QueryRequest::Range(rq));
  ASSERT_TRUE(ref_result.ok());
  std::vector<metadata::FileId> want = ref_result->ids;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want)
      << "scatter-gather range must equal the single-store answer";
  ASSERT_FALSE(want.empty()) << "(test must actually select something)";

  metadata::TopKQuery tq;
  tq.dims = rq.dims;
  tq.point = {500.0, 500.0};
  tq.k = 10;
  auto top = router.TopK(tq);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->hits.size(), 10u);
  EXPECT_EQ(top->ids.size(), 10u);
  // Merged hits come back nearest-first.
  for (std::size_t i = 1; i < top->hits.size(); ++i) {
    EXPECT_LE(top->hits[i - 1].first, top->hits[i].first);
  }
}

// ---- crash / recover --------------------------------------------------------

TEST(Svc, CrashRecoverLosesNoAckedWrite) {
  const auto dir = temp_dir("crash");
  svc::ClusterOptions co;
  co.num_shards = 2;
  co.in_memory = false;
  co.dir = dir.string();
  co.store_options = small_store_options();
  auto cluster = start_or_die(co);
  svc::Router router = make_router(*cluster, 1, 32);

  constexpr std::uint64_t kAcked = 40;
  for (std::uint64_t id = 0; id < kAcked; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }

  // Power-cut BOTH shards, then recover them.
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Crash(1).ok());
  {
    auto r = router.Point(trace_name(0));
    EXPECT_FALSE(r.ok()) << "a crashed cluster must not answer";
  }
  ASSERT_TRUE(cluster->Restart(0).ok());
  ASSERT_TRUE(cluster->Restart(1).ok());

  // The no-lost-acked-write theorem: every acked put survived.
  for (std::uint64_t id = 0; id < kAcked; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id) << " lost in the crash";
    EXPECT_EQ(r->id, id);
  }
  std::filesystem::remove_all(dir);
}

TEST(Svc, WritesRideOutACrashRestartWindow) {
  const auto dir = temp_dir("ride_out");
  svc::ClusterOptions co;
  co.num_shards = 2;
  co.in_memory = false;
  co.dir = dir.string();
  co.store_options = small_store_options();
  auto cluster = start_or_die(co);
  // Patient router: enough attempts/backoff to span the restart window.
  svc::Router router = make_router(*cluster, 1, 200);

  ASSERT_TRUE(cluster->Crash(0).ok());

  // A writer starts while shard 0 is down; its shard-0 puts retry with
  // the SAME request ids until the restart, then ack.
  std::atomic<int> failures{0};
  std::thread writer([&router, &failures] {
    for (std::uint64_t id = 0; id < 30; ++id) {
      if (!router.Put(make_file(id)).ok()) ++failures;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(cluster->Restart(0).ok());
  writer.join();
  ASSERT_EQ(failures.load(), 0);

  for (std::uint64_t id = 0; id < 30; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found) << trace_name(id);
  }
  // Exactly-once held across the crash boundary too: hosted == distinct.
  std::uint64_t hosted = 0;
  for (std::uint32_t s = 0; s < cluster->num_shards(); ++s) {
    auto stats = router.Stats(s);
    ASSERT_TRUE(stats.ok());
    hosted += stats->total_files;
  }
  EXPECT_EQ(hosted, 30u);
  std::filesystem::remove_all(dir);
}

// ---- dedup eviction ---------------------------------------------------------

// A delayed duplicate arriving AFTER its done-entry was FIFO-evicted gets
// no dedup protection — it must land idempotently at the store level for
// every keyed method, including a multi-op batch.
TEST(MetaService, EvictedDedupEntryReappliesIdempotently) {
  db::Options store_options = small_store_options();
  store_options.in_memory = true;
  auto opened = db::Store::Open(store_options, "");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<db::Store> store = std::move(opened).value();
  svc::MetaServiceOptions so;
  so.shard_id = 0;
  so.dedup_capacity = 2;  // tiny: a couple of fresh ids evict anything
  svc::MetaService service(store.get(), svc::PartitionMap::RoundRobin(1, 5),
                           so);

  const auto handle = [&](rpc::Method method, std::uint64_t seq,
                          const std::vector<std::uint8_t>& payload) {
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.client_id = 1;
    req.seq = seq;
    req.payload = payload;
    return service.Handle(req);
  };
  const auto evict = [&](std::uint64_t base) {
    // Three fresh done-entries push everything older out of capacity 2.
    for (std::uint64_t i = 0; i < 3; ++i) {
      std::vector<std::uint8_t> p;
      rpc::encode_file(make_file(900 + base + i), &p);
      ASSERT_EQ(handle(rpc::Method::kPut, base + i, p).status,
                db::StatusCode::kOk);
    }
  };
  const auto total_files = [&] {
    std::string v;
    EXPECT_TRUE(store->GetProperty("smartstore.total-files", &v));
    return v;
  };

  // Put: apply, evict, replay. The upsert converges; no duplicate record.
  std::vector<std::uint8_t> put_payload;
  rpc::encode_file(make_file(1), &put_payload);
  ASSERT_EQ(handle(rpc::Method::kPut, 10, put_payload).status,
            db::StatusCode::kOk);
  evict(100);
  const std::string before_put_replay = total_files();
  EXPECT_EQ(handle(rpc::Method::kPut, 10, put_payload).status,
            db::StatusCode::kOk);
  EXPECT_EQ(total_files(), before_put_replay);

  // Delete: apply, evict, replay. Already-absent is success, not kNotFound.
  std::vector<std::uint8_t> del_payload;
  rpc::encode_name(make_file(1).name, &del_payload);
  ASSERT_EQ(handle(rpc::Method::kDelete, 20, del_payload).status,
            db::StatusCode::kOk);
  evict(200);
  const std::string before_del_replay = total_files();
  EXPECT_EQ(handle(rpc::Method::kDelete, 20, del_payload).status,
            db::StatusCode::kOk);
  EXPECT_EQ(total_files(), before_del_replay);

  // Batch: put A, delete A, put B — order matters. The replay re-runs all
  // three idempotent forms and converges to the identical state.
  std::vector<rpc::BatchOp> ops(3);
  ops[0].is_put = true;
  ops[0].file = make_file(50);
  ops[1].is_put = false;
  ops[1].name = make_file(50).name;
  ops[2].is_put = true;
  ops[2].file = make_file(51);
  std::vector<std::uint8_t> batch_payload;
  rpc::encode_batch(ops, &batch_payload);
  ASSERT_EQ(handle(rpc::Method::kBatchWrite, 30, batch_payload).status,
            db::StatusCode::kOk);
  evict(300);
  const std::string before_batch_replay = total_files();
  EXPECT_EQ(handle(rpc::Method::kBatchWrite, 30, batch_payload).status,
            db::StatusCode::kOk);
  EXPECT_EQ(total_files(), before_batch_replay);
  // And the batch's net effect holds: 50 deleted, 51 present.
  metadata::PointQuery gone_q;
  gone_q.filename = make_file(50).name;
  auto gone = store->Query(db::QueryRequest::Point(std::move(gone_q)));
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->found);
  metadata::PointQuery kept_q;
  kept_q.filename = make_file(51).name;
  auto kept = store->Query(db::QueryRequest::Point(std::move(kept_q)));
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(kept->found);
}

// ---- snapshot scatter-gather ------------------------------------------------

// Cross-shard tie-breaking oracle: many records at the IDENTICAL distance
// live on different shards; the merged top-k must re-sort globally by
// (distance, id) before truncating, so the winners are exactly the lowest
// ids — the same answer a single store gives.
TEST(Svc, TopKCrossShardTieBreakOracle) {
  auto cluster = start_or_die(in_memory_cluster(4));
  svc::Router router = make_router(*cluster);

  db::Options ref_options = small_store_options();
  ref_options.in_memory = true;
  auto ref_opened = db::Store::Open(ref_options, "");
  ASSERT_TRUE(ref_opened.ok());
  std::unique_ptr<db::Store> reference = std::move(ref_opened).value();

  // 12 records, all attrs identical (=> identical distance to any query
  // point), names spread across the 4 shards by the partition key; plus a
  // few far-away records that must lose.
  for (std::uint64_t id = 0; id < 12; ++id) {
    metadata::FileMetadata f = make_file(id);
    for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) f.attrs[a] = 500.0;
    ASSERT_TRUE(router.Put(f).ok());
    ASSERT_TRUE(reference->Put(f).ok());
  }
  for (std::uint64_t id = 100; id < 104; ++id) {
    metadata::FileMetadata f = make_file(id);
    for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) f.attrs[a] = 0.0;
    ASSERT_TRUE(router.Put(f).ok());
    ASSERT_TRUE(reference->Put(f).ok());
  }

  metadata::TopKQuery tq;
  tq.dims = metadata::AttrSubset(
      {metadata::Attr::kFileSize, metadata::Attr::kReadCount});
  tq.point = {500.0, 500.0};
  tq.k = 5;

  auto routed = router.TopK(tq);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_EQ(routed->ids.size(), 5u);
  auto want = reference->Query(db::QueryRequest::TopK(tq), db::ReadOptions{});
  ASSERT_TRUE(want.ok());
  // Exact ORDERED equality: the tie-break is part of the contract.
  EXPECT_EQ(routed->ids, want->ids)
      << "cross-shard ties must resolve by (distance, id)";
  EXPECT_EQ(routed->ids, (std::vector<metadata::FileId>{0, 1, 2, 3, 4}));
  for (std::size_t i = 1; i < routed->hits.size(); ++i) {
    EXPECT_LE(routed->hits[i - 1].first, routed->hits[i].first);
  }
}

// The tentpole acceptance, routed variant: a pinned cluster cut scanned
// repeatedly while a writer streams inserts through the SAME router is
// bit-identical every time, and equal to a quiesced single store holding
// exactly the pre-pin population.
TEST(Svc, PinnedSnapshotScanStableUnderRoutedWrites) {
  auto cluster = start_or_die(in_memory_cluster(4));
  svc::Router router = make_router(*cluster);

  db::Options ref_options = small_store_options();
  ref_options.in_memory = true;
  auto ref_opened = db::Store::Open(ref_options, "");
  ASSERT_TRUE(ref_opened.ok());
  std::unique_ptr<db::Store> reference = std::move(ref_opened).value();

  for (std::uint64_t id = 0; id < 80; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
    ASSERT_TRUE(reference->Put(make_file(id)).ok());
  }

  auto snapshot = router.PinSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  metadata::RangeQuery rq;
  rq.dims = metadata::AttrSubset(
      {metadata::Attr::kFileSize, metadata::Attr::kReadCount});
  rq.lo = {-1e30, -1e30};
  rq.hi = {1e30, 1e30};  // select-all: every record is in range

  auto baseline = router.Range(rq, *snapshot);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->ids.size(), 80u);

  std::thread writer([&router] {
    for (std::uint64_t id = 1000; id < 1080; ++id) {
      ASSERT_TRUE(router.Put(make_file(id)).ok());
    }
  });
  for (int scan = 0; scan < 15; ++scan) {
    auto again = router.Range(rq, *snapshot);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->ids, baseline->ids)
        << "pinned scan " << scan << " tore under concurrent writes";
  }
  writer.join();

  // Quiesced oracle: the single store holds exactly the pre-pin records.
  auto want = reference->Query(db::QueryRequest::Range(rq), db::ReadOptions{});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(baseline->ids, want->ids);

  ASSERT_TRUE(router.ReleaseSnapshot(*snapshot).ok());
  // An unpinned (fresh-pin) scan now sees the writer's records too.
  auto after = router.Range(rq);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ids.size(), 160u);
  EXPECT_GE(router.stats().snapshot_pins, 2u);
}

TEST(MetaService, SnapshotLeaseCapacityAndTtl) {
  db::Options store_options = small_store_options();
  store_options.in_memory = true;
  auto opened = db::Store::Open(store_options, "");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<db::Store> store = std::move(opened).value();
  svc::MetaServiceOptions so;
  so.shard_id = 0;
  so.snapshot_lease_capacity = 2;
  so.snapshot_lease_ttl_ms = 60;
  svc::MetaService service(store.get(), svc::PartitionMap::RoundRobin(1, 5),
                           so);

  rpc::Frame pin;
  pin.type = rpc::MsgType::kRequest;
  pin.method = rpc::Method::kSnapPin;

  rpc::Frame a = service.Handle(pin);
  ASSERT_EQ(a.status, db::StatusCode::kOk);
  rpc::Frame b = service.Handle(pin);
  ASSERT_EQ(b.status, db::StatusCode::kOk);
  rpc::SnapshotLease lease_a, lease_b;
  ASSERT_TRUE(rpc::decode_snapshot_lease(a.payload, &lease_a).ok());
  ASSERT_TRUE(rpc::decode_snapshot_lease(b.payload, &lease_b).ok());
  EXPECT_NE(lease_a.lease_id, lease_b.lease_id);

  // Table full: the third pin is refused, not silently evicting a holder.
  EXPECT_EQ(service.Handle(pin).status, db::StatusCode::kUnavailable);

  // Releasing one frees a slot immediately.
  rpc::Frame release;
  release.type = rpc::MsgType::kRequest;
  release.method = rpc::Method::kSnapRelease;
  rpc::encode_snapshot_lease(lease_a, &release.payload);
  EXPECT_EQ(service.Handle(release).status, db::StatusCode::kOk);
  EXPECT_EQ(service.Handle(pin).status, db::StatusCode::kOk);

  // And the TTL sweeps abandoned leases: wait out the 60ms, then both
  // leaked slots are reclaimable.
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  EXPECT_EQ(service.Handle(pin).status, db::StatusCode::kOk);
  EXPECT_EQ(service.Handle(pin).status, db::StatusCode::kOk);
}

// A node that crashes while its clients hold snapshot leases leaves torn
// leases on the SURVIVING shards (the pin round's release never reaches
// them). Those must not pin the GC watermark forever: the TTL sweep
// reclaims them without any operator action.
TEST(Svc, CrashedClusterPinIsSweptByTtl) {
  svc::ClusterOptions co = in_memory_cluster(2);
  co.snapshot_lease_capacity = 1;  // one slot: a leaked lease is observable
  co.snapshot_lease_ttl_ms = 150;
  auto cluster = start_or_die(co);

  // An impatient router: lease-table-full is kUnavailable, and we want to
  // observe it rather than have the retry loop wait out the TTL for us.
  svc::RouterOptions ro;
  ro.client_id = 1;
  ro.max_attempts = 2;
  ro.backoff_init_us = 10;
  ro.backoff_max_us = 50;
  svc::Router router(cluster->ConnectAll(), cluster->map(), ro);

  for (std::uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  auto pinned = router.PinSnapshot();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();

  // Shard 0 dies and comes back with an empty lease table; shard 1 still
  // holds the torn lease — the cluster-wide pin can never be released.
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Restart(0).ok());

  // The torn lease occupies shard 1's only slot, so a fresh pin fails...
  auto refused = router.PinSnapshot();
  EXPECT_FALSE(refused.ok());

  // ...until the TTL sweeps it. No operator, no restart of shard 1.
  std::this_thread::sleep_for(std::chrono::milliseconds(220));
  auto swept = router.PinSnapshot();
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_TRUE(router.ReleaseSnapshot(*swept).ok());
}

// The router-wide retry budget is a saturating brake: once spent, further
// retryable failures surface immediately instead of amplifying an outage
// with backoff storms. First attempts stay free, so recovery needs no
// reset.
TEST(Svc, RouterRetryBudgetBoundsRetryStorms) {
  auto cluster = start_or_die(in_memory_cluster(1));
  svc::RouterOptions ro;
  ro.client_id = 9;
  ro.max_attempts = 50;  // per-op bound far above the router-wide budget
  ro.backoff_init_us = 10;
  ro.backoff_max_us = 100;
  ro.retry_budget = 5;
  svc::Router router(cluster->ConnectAll(), cluster->map(), ro);

  ASSERT_TRUE(router.Put(make_file(0)).ok());
  ASSERT_TRUE(cluster->Crash(0).ok());

  // Two ops against a dead shard: the first burns the budget, the second
  // fails fast. Neither gets anywhere near 50 attempts.
  EXPECT_FALSE(router.Put(make_file(1)).ok());
  EXPECT_FALSE(router.Put(make_file(2)).ok());
  const svc::RouterStats stats = router.stats();
  EXPECT_EQ(stats.gave_up, 2u);
  EXPECT_LE(stats.retries, 5u);

  // Recovery: first attempts don't draw on the budget at all.
  ASSERT_TRUE(cluster->Restart(0).ok());
  EXPECT_TRUE(router.Put(make_file(3)).ok());
}

// ---- control plane ----------------------------------------------------------

TEST(Svc, PingFlushFetchMap) {
  auto cluster = start_or_die(in_memory_cluster(2));
  svc::Router router = make_router(*cluster);
  EXPECT_TRUE(router.Ping(0).ok());
  EXPECT_TRUE(router.Ping(1).ok());
  EXPECT_TRUE(router.Flush().ok());
  EXPECT_TRUE(router.FetchMap().ok());
  EXPECT_EQ(router.map().version, cluster->map().version);
}

}  // namespace
