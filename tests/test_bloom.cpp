// Tests for the Bloom filter substrate: no false negatives, bounded false
// positives at the paper's 1024-bit / k=7 configuration, hierarchy unions,
// counting-filter deletions.
#include "bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace smartstore::bloom {
namespace {

std::vector<std::string> make_names(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back("/u" + std::to_string(rng.uniform_u64(100)) + "/f" +
                  std::to_string(i) + "_" + std::to_string(rng.next_u64()));
  }
  return out;
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1024, 7);
  const auto names = make_names(80, 1);
  for (const auto& n : names) bf.insert(n);
  for (const auto& n : names) EXPECT_TRUE(bf.may_contain(n));
}

TEST(BloomFilter, FalsePositiveRateAtPaperConfig) {
  // ~100 items in 1024 bits with k=7: theoretical FPP ~ 1.5%; allow slack.
  BloomFilter bf(1024, 7);
  const auto inserted = make_names(100, 2);
  for (const auto& n : inserted) bf.insert(n);
  const auto probes = make_names(5000, 3);
  std::size_t fp = 0;
  for (const auto& p : probes)
    if (bf.may_contain(p + "#absent")) ++fp;
  EXPECT_LT(static_cast<double>(fp) / 5000.0, 0.05);
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter bf(1024, 7);
  for (const auto& n : make_names(100, 4)) EXPECT_FALSE(bf.may_contain(n));
  EXPECT_EQ(bf.popcount(), 0u);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a(1024, 7), b(1024, 7);
  const auto na = make_names(40, 5);
  const auto nb = make_names(40, 6);
  for (const auto& n : na) a.insert(n);
  for (const auto& n : nb) b.insert(n);
  a.merge(b);
  for (const auto& n : na) EXPECT_TRUE(a.may_contain(n));
  for (const auto& n : nb) EXPECT_TRUE(a.may_contain(n));
}

TEST(BloomFilter, HierarchicalUnionPropagatesPositives) {
  // Three "leaf" filters unioned into a parent, as in Figure 4.
  BloomFilter leaf1(1024, 7), leaf2(1024, 7), leaf3(1024, 7);
  leaf1.insert("/a/1");
  leaf2.insert("/b/2");
  leaf3.insert("/c/3");
  BloomFilter parent(1024, 7);
  parent.merge(leaf1);
  parent.merge(leaf2);
  parent.merge(leaf3);
  EXPECT_TRUE(parent.may_contain("/a/1"));
  EXPECT_TRUE(parent.may_contain("/b/2"));
  EXPECT_TRUE(parent.may_contain("/c/3"));
  // A child-level negative can still be parent-positive (union), but a
  // parent negative must imply child negatives.
  if (!parent.may_contain("/never/inserted")) {
    EXPECT_FALSE(leaf1.may_contain("/never/inserted"));
  }
}

TEST(BloomFilter, BitsRoundedToWordMultiple) {
  BloomFilter bf(100, 3);
  EXPECT_EQ(bf.bit_count() % 64, 0u);
  EXPECT_GE(bf.bit_count(), 100u);
}

TEST(BloomFilter, FillRatioAndEstimatedFpp) {
  BloomFilter bf(1024, 7);
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(bf.estimated_fpp(), 0.0);
  for (const auto& n : make_names(64, 7)) bf.insert(n);
  EXPECT_GT(bf.fill_ratio(), 0.0);
  EXPECT_LT(bf.fill_ratio(), 1.0);
  EXPECT_GT(bf.estimated_fpp(), 0.0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(1024, 7);
  bf.insert("/x");
  EXPECT_TRUE(bf.may_contain("/x"));
  bf.clear();
  EXPECT_FALSE(bf.may_contain("/x"));
  EXPECT_EQ(bf.popcount(), 0u);
}

TEST(CountingBloomFilter, InsertRemoveRoundTrip) {
  CountingBloomFilter cbf(1024, 7);
  cbf.insert("/data/file1");
  EXPECT_TRUE(cbf.may_contain("/data/file1"));
  cbf.remove("/data/file1");
  EXPECT_FALSE(cbf.may_contain("/data/file1"));
}

TEST(CountingBloomFilter, RemoveKeepsOtherItems) {
  CountingBloomFilter cbf(2048, 7);
  const auto names = make_names(50, 8);
  for (const auto& n : names) cbf.insert(n);
  cbf.remove(names[0]);
  // No false negatives for the remaining items.
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_TRUE(cbf.may_contain(names[i]));
}

TEST(CountingBloomFilter, ToBloomFilterMatchesMembership) {
  CountingBloomFilter cbf(1024, 7);
  const auto names = make_names(60, 9);
  for (const auto& n : names) cbf.insert(n);
  cbf.remove(names[5]);
  const BloomFilter bf = cbf.to_bloom_filter();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i == 5) continue;
    EXPECT_TRUE(bf.may_contain(names[i]));
  }
  EXPECT_EQ(bf.bit_count(), cbf.bit_count());
}

TEST(CountingBloomFilter, DuplicateInsertsNeedMatchingRemoves) {
  CountingBloomFilter cbf(1024, 7);
  cbf.insert("/f");
  cbf.insert("/f");
  cbf.remove("/f");
  EXPECT_TRUE(cbf.may_contain("/f"));  // one copy still accounted
  cbf.remove("/f");
  EXPECT_FALSE(cbf.may_contain("/f"));
}

class BloomGeometryTest
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>> {};

TEST_P(BloomGeometryTest, NoFalseNegativesAcrossGeometries) {
  const auto [bits, k] = GetParam();
  BloomFilter bf(bits, k);
  const auto names = make_names(bits / 16, 10);
  for (const auto& n : names) bf.insert(n);
  for (const auto& n : names) EXPECT_TRUE(bf.may_contain(n));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomGeometryTest,
    ::testing::Values(std::make_pair<std::size_t, unsigned>(256, 3),
                      std::make_pair<std::size_t, unsigned>(512, 5),
                      std::make_pair<std::size_t, unsigned>(1024, 7),
                      std::make_pair<std::size_t, unsigned>(4096, 7),
                      std::make_pair<std::size_t, unsigned>(8192, 11)));

}  // namespace
}  // namespace smartstore::bloom
