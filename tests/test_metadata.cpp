// Tests for the metadata model: schema, attribute subsets, records,
// centroids and the semantic-correlation objective.
#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "metadata/schema.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace smartstore::metadata {
namespace {

TEST(Schema, AttrNamesDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumAttrs; ++i)
    names.insert(attr_name(static_cast<Attr>(i)));
  EXPECT_EQ(names.size(), kNumAttrs);
}

TEST(Schema, PhysicalVsBehavioral) {
  EXPECT_TRUE(attr_is_physical(Attr::kFileSize));
  EXPECT_TRUE(attr_is_physical(Attr::kCreationTime));
  EXPECT_FALSE(attr_is_physical(Attr::kReadCount));
  EXPECT_FALSE(attr_is_physical(Attr::kAccessFrequency));
}

TEST(AttrSubset, AllContainsEverything) {
  const AttrSubset all = AttrSubset::all();
  EXPECT_EQ(all.size(), kNumAttrs);
  for (std::size_t i = 0; i < kNumAttrs; ++i)
    EXPECT_TRUE(all.contains(static_cast<Attr>(i)));
}

TEST(AttrSubset, DeduplicatesAndSorts) {
  const AttrSubset s({Attr::kReadCount, Attr::kFileSize, Attr::kReadCount});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], Attr::kFileSize);  // sorted by enum value
  EXPECT_EQ(s[1], Attr::kReadCount);
}

TEST(AttrSubset, MaskRoundTrip) {
  const AttrSubset s({Attr::kFileSize, Attr::kModificationTime,
                      Attr::kWriteBytes});
  const AttrSubset back = AttrSubset::from_mask(s.mask());
  EXPECT_EQ(s, back);
}

TEST(AttrSubset, EnumerateCountsPowerSet) {
  const AttrSubset space({Attr::kFileSize, Attr::kCreationTime,
                          Attr::kReadBytes});
  const auto subsets = AttrSubset::enumerate(space);
  EXPECT_EQ(subsets.size(), 7u);  // 2^3 - 1
  for (const auto& s : subsets) {
    EXPECT_GE(s.size(), 1u);
    EXPECT_LE(s.size(), 3u);
  }
}

TEST(AttrSubset, ToStringReadable) {
  const AttrSubset s({Attr::kFileSize, Attr::kCreationTime});
  EXPECT_EQ(s.to_string(), "size+ctime");
  EXPECT_EQ(AttrSubset{}.to_string(), "<empty>");
}

FileMetadata make_file(FileId id, double size, double ctime) {
  FileMetadata f;
  f.id = id;
  f.name = "/test/f" + std::to_string(id);
  f.set_attr(Attr::kFileSize, size);
  f.set_attr(Attr::kCreationTime, ctime);
  return f;
}

TEST(FileMetadata, AttrAccessors) {
  FileMetadata f = make_file(1, 1024, 99);
  EXPECT_DOUBLE_EQ(f.attr(Attr::kFileSize), 1024);
  f.set_attr(Attr::kFileSize, 2048);
  EXPECT_DOUBLE_EQ(f.attr(Attr::kFileSize), 2048);
}

TEST(FileMetadata, ProjectSubset) {
  const FileMetadata f = make_file(1, 100, 50);
  const AttrSubset s({Attr::kCreationTime, Attr::kFileSize});
  const la::Vector v = f.project(s);
  ASSERT_EQ(v.size(), 2u);
  // Subset order is sorted: size (0) before ctime (1).
  EXPECT_DOUBLE_EQ(v[0], 100);
  EXPECT_DOUBLE_EQ(v[1], 50);
}

TEST(FileMetadata, FullVectorHasAllDims) {
  const FileMetadata f = make_file(1, 100, 50);
  EXPECT_EQ(f.full_vector().size(), kNumAttrs);
}

TEST(Centroid, AverageOfMembers) {
  std::vector<FileMetadata> files{make_file(1, 10, 0), make_file(2, 30, 10)};
  const AttrSubset s({Attr::kFileSize, Attr::kCreationTime});
  const la::Vector c = centroid(files, s);
  EXPECT_DOUBLE_EQ(c[0], 20);
  EXPECT_DOUBLE_EQ(c[1], 5);
}

TEST(Centroid, EmptyGroupIsZero) {
  const la::Vector c = centroid({}, AttrSubset({Attr::kFileSize}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0], 0);
}

TEST(GroupVariance, TightGroupsScoreLower) {
  const AttrSubset s({Attr::kFileSize});
  std::vector<FileMetadata> tight{make_file(1, 10, 0), make_file(2, 11, 0),
                                  make_file(3, 12, 0)};
  std::vector<FileMetadata> loose{make_file(4, 10, 0), make_file(5, 100, 0),
                                  make_file(6, 1000, 0)};
  EXPECT_LT(group_variance(tight, s), group_variance(loose, s));
  EXPECT_DOUBLE_EQ(group_variance({}, s), 0.0);
}

TEST(RangeQuery, MatchesSemantics) {
  RangeQuery q;
  q.dims = AttrSubset({Attr::kFileSize, Attr::kCreationTime});
  q.lo = {50, 0};
  q.hi = {150, 20};
  EXPECT_TRUE(q.matches(make_file(1, 100, 10)));
  EXPECT_FALSE(q.matches(make_file(2, 200, 10)));   // size out of range
  EXPECT_FALSE(q.matches(make_file(3, 100, 30)));   // ctime out of range
  EXPECT_TRUE(q.matches(make_file(4, 50, 0)));      // inclusive bounds
  EXPECT_TRUE(q.matches(make_file(5, 150, 20)));
}

}  // namespace
}  // namespace smartstore::metadata
