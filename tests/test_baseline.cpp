// Tests for the DBMS and centralized R-tree baselines: result correctness
// against ground truth and the cost relationships Table 4 relies on.
#include "baseline/central_rtree.h"
#include "baseline/dbms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/ground_truth.h"
#include "trace/query_gen.h"
#include "trace/synth.h"

namespace smartstore::baseline {
namespace {

using metadata::Attr;
using metadata::AttrSubset;
using metadata::FileId;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = trace::SyntheticTrace::generate(trace::eecs_profile(), 1, 11,
                                             /*downscale=*/10);  // 1500 files
    dbms_ = std::make_unique<DbmsStore>(20);
    dbms_->build(trace_.files());
    rt_ = std::make_unique<CentralRTreeStore>(20);
    rt_->build(trace_.files());
  }

  trace::SyntheticTrace trace_{};
  std::unique_ptr<DbmsStore> dbms_;
  std::unique_ptr<CentralRTreeStore> rt_;
};

TEST_F(BaselineTest, DbmsPointQueryCorrect) {
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& f = trace_.files()[i * 13 % trace_.files().size()];
    const auto res = dbms_->point_query({f.name}, 0.0);
    EXPECT_TRUE(res.found);
    EXPECT_EQ(res.id, f.id);
  }
  EXPECT_FALSE(dbms_->point_query({"/absent/file"}, 0.0).found);
}

TEST_F(BaselineTest, RtreePointQueryCorrect) {
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& f = trace_.files()[i * 13 % trace_.files().size()];
    const auto res = rt_->point_query({f.name}, 0.0);
    EXPECT_TRUE(res.found);
    EXPECT_EQ(res.id, f.id);
  }
  EXPECT_FALSE(rt_->point_query({"/absent/file"}, 0.0).found);
}

TEST_F(BaselineTest, RangeQueriesMatchGroundTruth) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kGauss, 21);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime,
                         Attr::kReadBytes});
  for (int i = 0; i < 20; ++i) {
    const auto q = gen.gen_range(dims, 0.1);
    auto truth = core::brute_force_range(trace_.files(), q);
    std::sort(truth.begin(), truth.end());
    auto d = dbms_->range_query(q, 0.0).ids;
    EXPECT_EQ(d, truth) << "dbms query " << i;
    auto r = rt_->range_query(q, 0.0).ids;
    EXPECT_EQ(r, truth) << "rtree query " << i;
  }
}

TEST_F(BaselineTest, TopKMatchesGroundTruth) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 22);
  const AttrSubset all = AttrSubset::all();
  for (int i = 0; i < 10; ++i) {
    const auto q = gen.gen_topk(all, 8);
    const auto truth =
        core::brute_force_topk(trace_.files(), dbms_->standardizer(), q);
    const auto d = dbms_->topk_query(q, 0.0);
    ASSERT_EQ(d.hits.size(), truth.size());
    for (std::size_t r = 0; r < truth.size(); ++r)
      EXPECT_NEAR(d.hits[r].first, truth[r].first, 1e-9);
    const auto t = rt_->topk_query(q, 0.0);
    ASSERT_EQ(t.hits.size(), truth.size());
    for (std::size_t r = 0; r < truth.size(); ++r)
      EXPECT_NEAR(t.hits[r].first, truth[r].first, 1e-9);
  }
}

TEST_F(BaselineTest, SubsetTopKAlsoCorrect) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kGauss, 23);
  const AttrSubset dims({Attr::kFileSize, Attr::kReadBytes});
  const auto q = gen.gen_topk(dims, 5);
  const auto truth =
      core::brute_force_topk(trace_.files(), rt_->standardizer(), q);
  const auto t = rt_->topk_query(q, 0.0);
  ASSERT_EQ(t.hits.size(), truth.size());
  for (std::size_t r = 0; r < truth.size(); ++r)
    EXPECT_NEAR(t.hits[r].first, truth[r].first, 1e-9);
}

TEST_F(BaselineTest, InsertAndDelete) {
  auto extra = trace_.make_insert_stream(5, 31);
  for (const auto& f : extra) {
    dbms_->insert_file(f);
    rt_->insert_file(f);
  }
  EXPECT_EQ(dbms_->size(), trace_.files().size() + 5);
  EXPECT_TRUE(dbms_->point_query({extra[0].name}, 0.0).found);
  EXPECT_TRUE(rt_->point_query({extra[0].name}, 0.0).found);
  EXPECT_TRUE(dbms_->delete_file(extra[0].name));
  EXPECT_TRUE(rt_->delete_file(extra[0].name));
  EXPECT_FALSE(dbms_->point_query({extra[0].name}, 0.0).found);
  EXPECT_FALSE(rt_->point_query({extra[0].name}, 0.0).found);
  EXPECT_FALSE(dbms_->delete_file(extra[0].name));
}

TEST_F(BaselineTest, DbmsSpaceExceedsRtreeSpace) {
  // One B+-tree per attribute (plus names) must dominate a single R-tree.
  EXPECT_GT(dbms_->index_bytes(), rt_->index_bytes());
}

TEST_F(BaselineTest, CentralizedQueueingGrowsLatencyUnderLoad) {
  // Replaying a burst of queries makes later queries wait: the queueing
  // behavior behind Table 4's blow-up.
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 25);
  const AttrSubset all = AttrSubset::all();
  double first = 0, last = 0;
  for (int i = 0; i < 40; ++i) {
    const auto q = gen.gen_topk(all, 8);
    const auto res = dbms_->topk_query(q, 0.0);  // all arrive at t=0
    if (i == 0) first = res.stats.latency_s;
    last = res.stats.latency_s;
  }
  EXPECT_GT(last, first * 10);
}

TEST_F(BaselineTest, RtreeRangeCheaperThanDbmsRange) {
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kGauss, 26);
  const AttrSubset dims({Attr::kFileSize, Attr::kModificationTime});
  std::size_t dbms_scanned = 0, rt_scanned = 0;
  for (int i = 0; i < 20; ++i) {
    const auto q = gen.gen_range(dims, 0.05);
    dbms_scanned += dbms_->range_query(q, 0.0).stats.records_scanned;
    rt_scanned += rt_->range_query(q, 0.0).stats.records_scanned;
  }
  EXPECT_GT(dbms_scanned, rt_scanned);
}

}  // namespace
}  // namespace smartstore::baseline
