// Tests for semantic grouping: greedy threshold aggregation, K-means,
// scatter criteria and optimal-threshold selection.
#include "core/grouping.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace smartstore::core {
namespace {

std::vector<la::Vector> two_clusters(std::size_t per, std::uint64_t seed) {
  // Both dimensions carry the cluster signal: with a single informative
  // dimension, z-scoring would amplify the noise dimension to signal scale
  // (realistic metadata clusters are coherent across several attributes).
  util::Rng rng(seed);
  std::vector<la::Vector> v;
  for (std::size_t i = 0; i < per; ++i) {
    v.push_back({10 + rng.gauss(0, 0.5), 10 + rng.gauss(0, 0.5)});
    v.push_back({-10 + rng.gauss(0, 0.5), -10 + rng.gauss(0, 0.5)});
  }
  return v;
}

bool grouping_consistent(const Grouping& g, std::size_t n) {
  if (g.group_of.size() != n) return false;
  std::size_t total = 0;
  for (std::size_t gi = 0; gi < g.groups.size(); ++gi) {
    for (std::size_t m : g.groups[gi]) {
      if (g.group_of[m] != gi) return false;
      ++total;
    }
  }
  return total == n;
}

TEST(GroupBySimilarity, SeparatesClusters) {
  const auto docs = two_clusters(6, 1);  // even = A, odd = B
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 2);
  const Grouping g = group_by_similarity(m, 0.5, 32);
  ASSERT_TRUE(grouping_consistent(g, docs.size()));
  EXPECT_EQ(g.num_groups(), 2u);
  for (std::size_t i = 0; i < docs.size(); ++i)
    for (std::size_t j = 0; j < docs.size(); ++j)
      if ((i % 2) == (j % 2))
        EXPECT_EQ(g.group_of[i], g.group_of[j]);
}

TEST(GroupBySimilarity, CapKeepsGroupSizesBounded) {
  const auto docs = two_clusters(20, 2);
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 2);
  const Grouping g = group_by_similarity(m, 0.3, 8);
  ASSERT_TRUE(grouping_consistent(g, docs.size()));
  for (const auto& members : g.groups) EXPECT_LE(members.size(), 8u);
}

TEST(GroupBySimilarity, HighThresholdYieldsSingletons) {
  const auto docs = two_clusters(5, 3);
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 2);
  // cosine similarity cannot exceed 1.
  const Grouping g = group_by_similarity(m, 1.0, 8);
  EXPECT_EQ(g.num_groups(), docs.size());
}

TEST(GroupVectors, EmptyAndSingleton) {
  const Grouping g0 = group_vectors_by_similarity({}, 0.5, 4);
  EXPECT_EQ(g0.num_groups(), 0u);
  const Grouping g1 = group_vectors_by_similarity({{1.0, 2.0}}, 0.5, 4);
  EXPECT_EQ(g1.num_groups(), 1u);
  EXPECT_EQ(g1.groups[0].size(), 1u);
}

TEST(Kmeans, FindsTwoClusters) {
  const auto docs = two_clusters(25, 4);
  const Grouping g = kmeans_cluster(docs, 2, 8, 99);
  ASSERT_TRUE(grouping_consistent(g, docs.size()));
  ASSERT_EQ(g.num_groups(), 2u);
  // Members of each cluster must agree with parity.
  for (const auto& members : g.groups) {
    const std::size_t parity = members[0] % 2;
    for (std::size_t m : members) EXPECT_EQ(m % 2, parity);
  }
}

TEST(Kmeans, CapacityBalancesLoad) {
  const auto docs = two_clusters(30, 5);  // 60 points
  const Grouping g = kmeans_cluster(docs, 6, 6, 7, /*capacity=*/12);
  ASSERT_TRUE(grouping_consistent(g, docs.size()));
  for (const auto& members : g.groups) EXPECT_LE(members.size(), 12u);
}

TEST(Kmeans, KGreaterThanNClamps) {
  const std::vector<la::Vector> docs{{1, 1}, {2, 2}, {3, 3}};
  const Grouping g = kmeans_cluster(docs, 10, 3, 1);
  EXPECT_LE(g.num_groups(), 3u);
  ASSERT_TRUE(grouping_consistent(g, 3));
}

TEST(Kmeans, Deterministic) {
  const auto docs = two_clusters(10, 6);
  const Grouping a = kmeans_cluster(docs, 4, 5, 42);
  const Grouping b = kmeans_cluster(docs, 4, 5, 42);
  EXPECT_EQ(a.group_of, b.group_of);
}

TEST(RandomGrouping, EqualSizes) {
  const Grouping g = random_grouping(100, 10, 3);
  ASSERT_TRUE(grouping_consistent(g, 100));
  EXPECT_EQ(g.num_groups(), 10u);
  for (const auto& members : g.groups) EXPECT_EQ(members.size(), 10u);
}

TEST(Scatter, WithinPlusBetweenIsTotal) {
  // W + B equals total scatter around the global mean (law of total
  // variance for groupings).
  const auto docs = two_clusters(8, 7);
  const Grouping g = kmeans_cluster(docs, 2, 5, 11);
  const double w = within_group_scatter(docs, g);
  const double b = between_group_scatter(docs, g);
  la::Vector mean(2, 0.0);
  for (const auto& d : docs) {
    mean[0] += d[0];
    mean[1] += d[1];
  }
  mean[0] /= docs.size();
  mean[1] /= docs.size();
  double total = 0;
  for (const auto& d : docs) total += la::squared_distance(d, mean);
  EXPECT_NEAR(w + b, total, 1e-8 * (1 + total));
}

TEST(Scatter, PerfectGroupingMaximizesCriterion) {
  const auto docs = two_clusters(10, 8);
  Grouping good;  // by parity (true clusters)
  good.groups.assign(2, {});
  good.group_of.assign(docs.size(), 0);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    good.groups[i % 2].push_back(i);
    good.group_of[i] = i % 2;
  }
  const Grouping bad = random_grouping(docs.size(), 2, 9);
  EXPECT_GT(variance_ratio_criterion(docs, good),
            variance_ratio_criterion(docs, bad));
}

TEST(Scatter, CriterionUndefinedCases) {
  const auto docs = two_clusters(4, 10);
  Grouping one;
  one.groups = {{0, 1, 2, 3, 4, 5, 6, 7}};
  one.group_of.assign(8, 0);
  EXPECT_DOUBLE_EQ(variance_ratio_criterion(docs, one), 0.0);  // t < 2
}

TEST(OptimalThreshold, RecoversSeparatingEpsilon) {
  const auto docs = two_clusters(10, 11);
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 2);
  const double eps = optimal_threshold(m, 16);
  // The chosen threshold must separate the two clusters.
  const Grouping g = group_by_similarity(m, eps, 16);
  EXPECT_EQ(g.num_groups(), 2u);
}

TEST(OptimalThreshold, SmallInputsFallBack) {
  const std::vector<la::Vector> docs{{1, 0}, {0, 1}};
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 2);
  EXPECT_DOUBLE_EQ(optimal_threshold(m, 4), 0.5);
}

}  // namespace
}  // namespace smartstore::core
