// Tests for Minimum Bounding Rectangles.
#include "rtree/mbr.h"

#include <gtest/gtest.h>

namespace smartstore::rtree {
namespace {

TEST(Mbr, EmptyIsInvalid) {
  Mbr m;
  EXPECT_FALSE(m.valid());
  EXPECT_DOUBLE_EQ(m.area(), 0.0);
  EXPECT_FALSE(m.contains(la::Vector{0.0}));
}

TEST(Mbr, PointBoxIsDegenerate) {
  Mbr m(la::Vector{1, 2});
  EXPECT_TRUE(m.valid());
  EXPECT_DOUBLE_EQ(m.area(), 0.0);
  EXPECT_TRUE(m.contains(la::Vector{1, 2}));
  EXPECT_FALSE(m.contains(la::Vector{1, 3}));
}

TEST(Mbr, ExpandByPoints) {
  Mbr m;
  m.expand(la::Vector{0, 0});
  m.expand(la::Vector{2, 3});
  m.expand(la::Vector{1, -1});
  EXPECT_EQ(m.lo(), (la::Vector{0, -1}));
  EXPECT_EQ(m.hi(), (la::Vector{2, 3}));
  EXPECT_DOUBLE_EQ(m.area(), 2 * 4);
  EXPECT_DOUBLE_EQ(m.margin(), 2 + 4);
}

TEST(Mbr, ExpandByBoxes) {
  Mbr a({0, 0}, {1, 1});
  const Mbr b({2, -1}, {3, 0.5});
  a.expand(b);
  EXPECT_EQ(a.lo(), (la::Vector{0, -1}));
  EXPECT_EQ(a.hi(), (la::Vector{3, 1}));
  EXPECT_TRUE(a.contains(b));
}

TEST(Mbr, ExpandInvalidIsIdentity) {
  Mbr a({0, 0}, {1, 1});
  const Mbr before = a;
  a.expand(Mbr());
  EXPECT_EQ(a, before);
  Mbr empty;
  empty.expand(before);
  EXPECT_EQ(empty, before);
}

TEST(Mbr, ContainsBoundaryInclusive) {
  const Mbr m({0, 0}, {1, 1});
  EXPECT_TRUE(m.contains(la::Vector{0, 0}));
  EXPECT_TRUE(m.contains(la::Vector{1, 1}));
  EXPECT_TRUE(m.contains(la::Vector{0.5, 1.0}));
  EXPECT_FALSE(m.contains(la::Vector{1.0001, 0.5}));
}

TEST(Mbr, IntersectsCases) {
  const Mbr a({0, 0}, {2, 2});
  EXPECT_TRUE(a.intersects(Mbr({1, 1}, {3, 3})));    // overlap
  EXPECT_TRUE(a.intersects(Mbr({2, 2}, {3, 3})));    // touch corner
  EXPECT_FALSE(a.intersects(Mbr({3, 3}, {4, 4})));   // disjoint
  EXPECT_TRUE(a.intersects(Mbr({0.5, 0.5}, {1, 1})));  // containment
  EXPECT_FALSE(a.intersects(Mbr()));                 // invalid
}

TEST(Mbr, Enlargement) {
  const Mbr a({0, 0}, {2, 2});  // area 4
  EXPECT_DOUBLE_EQ(a.enlargement(Mbr({1, 1}, {1.5, 1.5})), 0.0);  // inside
  // Adding (3,2) grows to [0,3]x[0,2] = 6, delta 2.
  EXPECT_DOUBLE_EQ(a.enlargement(Mbr(la::Vector{3, 2})), 2.0);
}

TEST(Mbr, MinSquaredDistance) {
  const Mbr m({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(m.min_squared_distance({1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(m.min_squared_distance({3, 1}), 1.0);   // right face
  EXPECT_DOUBLE_EQ(m.min_squared_distance({3, 3}), 2.0);   // corner
  EXPECT_DOUBLE_EQ(m.min_squared_distance({-2, 1}), 4.0);  // left face
}

TEST(Mbr, MaxSquaredDistanceBoundsMin) {
  const Mbr m({0, 0}, {2, 2});
  const la::Vector p{3, 3};
  EXPECT_GE(m.max_squared_distance(p), m.min_squared_distance(p));
  EXPECT_DOUBLE_EQ(m.max_squared_distance(p), 9.0 + 9.0);  // farthest corner
}

TEST(Mbr, CenterIsMidpoint) {
  const Mbr m({0, 2}, {4, 6});
  EXPECT_EQ(m.center(), (la::Vector{2, 4}));
}

TEST(Mbr, MergeFreeFunction) {
  const Mbr u = merge(Mbr({0, 0}, {1, 1}), Mbr({2, 2}, {3, 3}));
  EXPECT_EQ(u.lo(), (la::Vector{0, 0}));
  EXPECT_EQ(u.hi(), (la::Vector{3, 3}));
}

}  // namespace
}  // namespace smartstore::rtree
