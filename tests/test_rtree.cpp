// Tests for the classical R-tree: differential testing against brute
// force for range and k-NN queries, deletion with condensation,
// structural invariants under random workloads.
#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace smartstore::rtree {
namespace {

std::vector<la::Vector> random_points(std::size_t n, std::size_t dims,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<la::Vector> pts(n, la::Vector(dims));
  for (auto& p : pts)
    for (auto& x : p) x = rng.uniform(-10, 10);
  return pts;
}

TEST(RTree, EmptyTreeQueries) {
  RTree t(2);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.range_query(Mbr({-1, -1}, {1, 1})).empty());
  EXPECT_TRUE(t.knn({0, 0}, 3).empty());
  EXPECT_FALSE(t.erase({0, 0}, 1));
  EXPECT_TRUE(t.check_invariants());
}

TEST(RTree, SingleEntry) {
  RTree t(2);
  t.insert({1, 1}, 42);
  EXPECT_EQ(t.size(), 1u);
  const auto hits = t.range_query(Mbr({0, 0}, {2, 2}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  const auto nn = t.knn({5, 5}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].second, 42u);
  EXPECT_DOUBLE_EQ(nn[0].first, 32.0);
}

TEST(RTree, RangeQueryMatchesBruteForce) {
  const auto pts = random_points(2000, 3, 7);
  RTree t(3, 16);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  ASSERT_TRUE(t.check_invariants());

  util::Rng rng(8);
  for (int q = 0; q < 40; ++q) {
    la::Vector lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      const double a = rng.uniform(-10, 10), b = rng.uniform(-10, 10);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const Mbr box(lo, hi);
    auto got = t.range_query(box);
    std::sort(got.begin(), got.end());
    std::vector<RTree::Payload> want;
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (box.contains(pts[i])) want.push_back(i);
    ASSERT_EQ(got, want) << "query " << q;
  }
}

TEST(RTree, KnnMatchesBruteForce) {
  const auto pts = random_points(1500, 2, 9);
  RTree t(2, 12);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);

  util::Rng rng(10);
  for (int q = 0; q < 30; ++q) {
    const la::Vector probe{rng.uniform(-12, 12), rng.uniform(-12, 12)};
    const std::size_t k = 1 + rng.uniform_u64(20);
    const auto got = t.knn(probe, k);
    ASSERT_EQ(got.size(), std::min(k, pts.size()));
    std::vector<std::pair<double, RTree::Payload>> want;
    for (std::size_t i = 0; i < pts.size(); ++i)
      want.emplace_back(la::squared_distance(pts[i], probe), i);
    std::partial_sort(want.begin(), want.begin() + got.size(), want.end());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].first, want[i].first, 1e-9) << "rank " << i;
    }
  }
}

TEST(RTree, KnnResultsSortedAscending) {
  const auto pts = random_points(500, 2, 11);
  RTree t(2);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  const auto got = t.knn({0, 0}, 25);
  for (std::size_t i = 1; i < got.size(); ++i)
    EXPECT_LE(got[i - 1].first, got[i].first);
}

TEST(RTree, EraseRemovesOnlyTargetEntry) {
  RTree t(2);
  t.insert({1, 1}, 1);
  t.insert({1, 1}, 2);  // same point, different payload
  EXPECT_TRUE(t.erase({1, 1}, 1));
  EXPECT_EQ(t.size(), 1u);
  const auto hits = t.range_query(Mbr({0, 0}, {2, 2}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
  EXPECT_FALSE(t.erase({1, 1}, 1));
}

TEST(RTree, EraseToEmptyAndRefill) {
  const auto pts = random_points(600, 2, 12);
  RTree t(2, 8);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  for (std::size_t i = 0; i < pts.size(); ++i)
    ASSERT_TRUE(t.erase(pts[i], i)) << i;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.check_invariants());
  for (std::size_t i = 0; i < 50; ++i) t.insert(pts[i], i);
  EXPECT_EQ(t.size(), 50u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(RTree, StatsAccounting) {
  const auto pts = random_points(1000, 4, 13);
  RTree t(4, 10);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  const auto s = t.stats();
  EXPECT_EQ(s.entries, 1000u);
  EXPECT_GT(s.leaf_nodes, 1u);
  EXPECT_GT(s.internal_nodes, 0u);
  EXPECT_GE(s.height, 2u);
  EXPECT_GT(s.bytes, 1000 * 4 * sizeof(double));
  t.range_query(Mbr(la::Vector(4, -1.0), la::Vector(4, 1.0)));
  EXPECT_GT(t.stats().last_nodes_visited, 0u);
}

TEST(RTree, BoundsCoverAllPoints) {
  const auto pts = random_points(300, 2, 14);
  RTree t(2);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  const Mbr b = t.bounds();
  for (const auto& p : pts) EXPECT_TRUE(b.contains(p));
}

TEST(RTree, ForEachVisitsEverything) {
  const auto pts = random_points(400, 2, 15);
  RTree t(2);
  for (std::size_t i = 0; i < pts.size(); ++i) t.insert(pts[i], i);
  std::set<RTree::Payload> seen;
  t.for_each([&](const la::Vector&, RTree::Payload id) { seen.insert(id); });
  EXPECT_EQ(seen.size(), 400u);
}

struct RandomOpsParam {
  std::size_t dims;
  std::size_t fanout;
  std::uint64_t seed;
};

class RTreeRandomOps : public ::testing::TestWithParam<RandomOpsParam> {};

TEST_P(RTreeRandomOps, InvariantsUnderChurn) {
  const auto [dims, fanout, seed] = GetParam();
  util::Rng rng(seed);
  RTree t(dims, fanout);
  std::vector<std::pair<la::Vector, RTree::Payload>> live;
  RTree::Payload next = 0;

  for (int op = 0; op < 3000; ++op) {
    if (live.empty() || rng.bernoulli(0.65)) {
      la::Vector p(dims);
      for (auto& x : p) x = rng.uniform(-100, 100);
      t.insert(p, next);
      live.emplace_back(p, next);
      ++next;
    } else {
      const std::size_t i = rng.uniform_u64(live.size());
      ASSERT_TRUE(t.erase(live[i].first, live[i].second));
      live[i] = live.back();
      live.pop_back();
    }
    if (op % 250 == 0) {
      ASSERT_TRUE(t.check_invariants()) << "op " << op;
      ASSERT_EQ(t.size(), live.size());
    }
  }
  ASSERT_TRUE(t.check_invariants());
  ASSERT_EQ(t.size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RTreeRandomOps,
    ::testing::Values(RandomOpsParam{2, 8, 1}, RandomOpsParam{2, 16, 2},
                      RandomOpsParam{3, 8, 3}, RandomOpsParam{5, 12, 4},
                      RandomOpsParam{10, 16, 5}, RandomOpsParam{1, 4, 6}));

}  // namespace
}  // namespace smartstore::rtree
