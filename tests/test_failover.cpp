// The replication & failover oracle suite: per-shard WAL replication
// (primary -> warm-standby follower), the sync/degraded ack barrier,
// follower promotion, epoch fencing of deposed primaries, and the chaos
// sweep — kill the primary at every phase of a live write load and prove
// ZERO acked writes are lost while the cluster resumes without operator
// action.
//
// Everything runs the real stack (Router -> wire format -> transport ->
// MetaService -> ReplicationSender -> db::Store) in one process, so ASan,
// TSan, and the lock-rank validator watch every test. The chaos sweep is
// seed-deterministic; the nightly CI job elevates the fault-injection
// knobs via SMARTSTORE_CHAOS_* env vars (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "metadata/schema.h"
#include "rpc/fault.h"
#include "svc/cluster.h"
#include "svc/partition.h"
#include "svc/router.h"

namespace {

using namespace smartstore;

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("smartstore_test_failover_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string trace_name(std::uint64_t id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/sub%u/u%03u/app%03u/f%06u.dat",
                static_cast<unsigned>(id % 2), static_cast<unsigned>(id % 7),
                static_cast<unsigned>(id % 13), static_cast<unsigned>(id));
  return buf;
}

metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = trace_name(id);
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) {
    f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 1000);
  }
  return f;
}

/// A replicated (rf == 2) durable cluster rooted at `dir`. Manual
/// promotion by default: deterministic tests drive Promote() themselves;
/// the automatic-failover tests flip auto_failover back on.
svc::ClusterOptions replicated_cluster(const std::string& dir,
                                       std::uint32_t shards) {
  svc::ClusterOptions o;
  o.num_shards = shards;
  o.replication_factor = 2;
  o.in_memory = false;
  o.dir = dir;
  o.store_options.num_units = 4;
  o.store_options.fanout = 4;
  o.store_options.seed = 7;
  o.store_options.routing = db::Routing::kOnline;
  o.repl_ack_timeout_ms = 2'000;
  o.auto_failover = false;
  return o;
}

std::unique_ptr<svc::Cluster> start_or_die(const svc::ClusterOptions& o) {
  auto started = svc::Cluster::Start(o);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  return std::move(started).value();
}

/// A patient router: enough attempts to ride out a full crash-detect-
/// promote-refresh window.
svc::Router make_router(svc::Cluster& cluster, std::uint64_t client_id = 1,
                        int max_attempts = 64) {
  svc::RouterOptions o;
  o.client_id = client_id;
  o.max_attempts = max_attempts;
  o.backoff_init_us = 50;
  o.backoff_max_us = 20'000;
  return svc::Router(cluster.ConnectAll(), cluster.map(), o);
}

/// Polls until the cluster map reaches `epoch` (or the deadline passes).
/// Used to wait out the automatic failover manager.
bool wait_for_epoch(svc::Cluster& cluster, std::uint64_t epoch,
                    std::uint64_t timeout_ms = 5'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster.map().epoch >= epoch) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cluster.map().epoch >= epoch;
}

/// Polls node `node`'s kReplFrontier probe until it reports ready (its
/// primary certified that its frontier covers every acked write). A
/// chaos kill of the node's primary is only guaranteed survivable once
/// this holds — before that, the shard is DESIGNED to stay down rather
/// than promote a follower that may be missing degraded acks.
bool wait_follower_ready(svc::Cluster& cluster, std::uint32_t node,
                         std::uint64_t timeout_ms = 5'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = rpc::Method::kReplFrontier;
    rpc::Frame resp;
    if (cluster.Connect(node)->Call(req, &resp).ok() &&
        resp.status == db::StatusCode::kOk) {
      rpc::ReplStatus st;
      if (rpc::decode_repl_status(resp.payload, &st).ok() && st.ready) {
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// ---- replicated topology basics ---------------------------------------------

TEST(Failover, ReplicatedStartupServesAndMapDescribesTopology) {
  const auto dir = temp_dir("startup");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 2));
  EXPECT_EQ(cluster->num_nodes(), 4u);
  const svc::PartitionMap map = cluster->map();
  EXPECT_EQ(map.epoch, 1u);
  EXPECT_EQ(map.num_nodes, 4u);
  EXPECT_EQ(map.primary_node_of(0), 0u);
  EXPECT_EQ(map.primary_node_of(1), 2u);

  svc::Router router = make_router(*cluster);
  constexpr std::uint64_t kPuts = 50;
  for (std::uint64_t id = 0; id < kPuts; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok()) << id;
  }
  for (std::uint64_t id = 0; id < kPuts; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->id, id);
  }
  // Scatter reads route to primaries only and see everything exactly once.
  metadata::RangeQuery rq;  // covers every attr value make_file produces
  rq.dims = metadata::AttrSubset({metadata::Attr::kFileSize});
  rq.lo = {0.0};
  rq.hi = {1000.0};
  auto range = router.Range(rq);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->ids.size(), kPuts);
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

TEST(Failover, PromotionKeepsEveryAckedWriteAndBumpsEpoch) {
  const auto dir = temp_dir("promote");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 1));
  svc::Router router = make_router(*cluster);

  constexpr std::uint64_t kAcked = 40;
  for (std::uint64_t id = 0; id < kAcked; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }

  // Power-cut the primary; promote the (synced, ready) follower.
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());
  const svc::PartitionMap map = cluster->map();
  EXPECT_EQ(map.primary_node_of(0), 1u);
  EXPECT_EQ(map.epoch, 2u);

  // Every acked write survived onto the promoted follower, and the
  // router finds its way there through map refresh + redirects alone.
  for (std::uint64_t id = 0; id < kAcked; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << trace_name(id) << ": " << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id) << " lost in failover";
  }
  // And the shard takes new writes (degraded: the old primary is gone).
  for (std::uint64_t id = kAcked; id < kAcked + 10; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  auto stats = router.Stats(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_files, kAcked + 10);
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

TEST(Failover, FollowerCrashDegradesThenRejoinResyncs) {
  const auto dir = temp_dir("degrade");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 1));
  svc::Router router = make_router(*cluster);

  for (std::uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  // Follower dies: the primary detaches proactively and keeps acking
  // (degraded) without stalling on the dead stream.
  ASSERT_TRUE(cluster->Crash(1).ok());
  for (std::uint64_t id = 10; id < 20; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  // Rejoin: wipe + snapshot bootstrap + stream catch-up.
  ASSERT_TRUE(cluster->Restart(1).ok());
  for (std::uint64_t id = 20; id < 30; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  // The rejoined follower must be promotable again — and must hold ALL
  // 30 acked writes, including the ones acked while it was dead.
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());
  for (std::uint64_t id = 0; id < 30; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id);
  }
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

// A follower that is DOWN while the primary degraded-acks must never be
// promoted on its stale `ready` state, and restarting it ahead of the
// primary is refused — better unavailable than wrong.
TEST(Failover, StaleFollowerIsNeverPromotedOverAckedWrites) {
  const auto dir = temp_dir("stale");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 1));
  svc::Router router = make_router(*cluster);

  for (std::uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Crash(1).ok());
  // Degraded acks the dead follower has never seen.
  for (std::uint64_t id = 10; id < 20; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Crash(0).ok());

  // No ready follower -> no promotion. The shard stays down rather than
  // quietly forgetting writes 10..19.
  EXPECT_FALSE(cluster->Promote(0).ok());
  // The follower cannot rejoin first either: the wipe-and-bootstrap path
  // needs the primary (the only holder of every acked write) up.
  EXPECT_FALSE(cluster->Restart(1).ok());

  // Recovery: the primary restarts from its WAL, then the follower
  // rejoins, then promotion works again.
  ASSERT_TRUE(cluster->Restart(0).ok());
  ASSERT_TRUE(cluster->Restart(1).ok());
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());
  for (std::uint64_t id = 0; id < 20; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id);
  }
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

// Primary restart with a LIVE follower: the follower's `ready` latch
// predates the crash, so the restart wipes and re-bootstraps it before
// it can ever be promoted over post-restart degraded acks.
TEST(Failover, PrimaryRestartResyncsLiveFollower) {
  const auto dir = temp_dir("resync");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 1));
  svc::Router router = make_router(*cluster);

  for (std::uint64_t id = 0; id < 15; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Restart(0).ok());  // follower 1 wiped + re-synced
  EXPECT_TRUE(cluster->IsUp(1));
  for (std::uint64_t id = 15; id < 30; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());
  for (std::uint64_t id = 0; id < 30; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id);
  }
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

// The deposed primary rejoins as a follower of the node that replaced it
// (its unacked divergence is wiped), and can win the NEXT failover.
TEST(Failover, DeposedPrimaryRejoinsAndWinsNextFailover) {
  const auto dir = temp_dir("deposed");
  auto cluster = start_or_die(replicated_cluster(dir.string(), 1));
  svc::Router router = make_router(*cluster);

  for (std::uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Crash(0).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());  // node 1 primary, epoch 2
  for (std::uint64_t id = 20; id < 40; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  ASSERT_TRUE(cluster->Restart(0).ok());  // rejoins as node 1's follower
  for (std::uint64_t id = 40; id < 50; ++id) {
    ASSERT_TRUE(router.Put(make_file(id)).ok());
  }
  // Second failover, opposite direction.
  ASSERT_TRUE(cluster->Crash(1).ok());
  ASSERT_TRUE(cluster->Promote(0).ok());
  const svc::PartitionMap map = cluster->map();
  EXPECT_EQ(map.primary_node_of(0), 0u);
  EXPECT_EQ(map.epoch, 3u);
  for (std::uint64_t id = 0; id < 50; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id);
  }
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

// ---- automatic failover -----------------------------------------------------

TEST(Failover, AutomaticFailoverResumesWithoutOperatorAction) {
  const auto dir = temp_dir("auto");
  svc::ClusterOptions co = replicated_cluster(dir.string(), 2);
  co.auto_failover = true;
  co.heartbeat_interval_ms = 10;
  co.heartbeat_misses = 2;
  auto cluster = start_or_die(co);
  svc::Router router = make_router(*cluster, 1, 400);

  constexpr std::uint64_t kTotal = 80;
  std::atomic<int> failures{0};
  std::string first_failure;
  std::thread writer([&router, &failures, &first_failure] {
    for (std::uint64_t id = 0; id < kTotal; ++id) {
      const db::Status s = router.Put(make_file(id));
      if (!s.ok()) {
        if (failures.fetch_add(1) == 0) {
          first_failure = "id=" + std::to_string(id) + ": " + s.ToString();
        }
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Kill shard 0's primary mid-load. Nobody calls Promote: the manager
  // must detect, pick the ready follower, and re-point the map.
  const bool crashed = cluster->Crash(0).ok();
  const bool promoted = wait_for_epoch(*cluster, 2);
  writer.join();  // joined before any assert can bail out of the test
  ASSERT_TRUE(crashed);
  ASSERT_TRUE(promoted) << "automatic promotion never happened";
  ASSERT_EQ(failures.load(), 0)
      << "acked-or-retried: no put may fail; first: " << first_failure;
  EXPECT_EQ(cluster->map().primary_node_of(0), 1u);

  for (std::uint64_t id = 0; id < kTotal; ++id) {
    auto r = router.Point(trace_name(id));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->found) << trace_name(id) << " lost in auto failover";
  }
  ASSERT_TRUE(cluster->Stop().ok());
  std::filesystem::remove_all(dir);
}

// ---- the chaos sweep --------------------------------------------------------

// Kill the primary at a sweep of phases of a live, fault-injected write
// load: immediately (mid-batch), mid-checkpoint (checkpoint_every is
// tiny, so checkpoints are continuous), right after a follower rejoin
// (bootstrap catch-up still in flight), and a double failure — kill the
// PROMOTED primary too, then bring the first victim back. After every
// phase: zero acked-write loss, exactly-once effects, and the merged
// range scan equals the oracle (every id written, once, in order).
//
// Deterministic in the seed. The nightly chaos CI job elevates drop/delay
// via SMARTSTORE_CHAOS_DROP_P / SMARTSTORE_CHAOS_DELAY_US and varies
// SMARTSTORE_CHAOS_SEED; on failure the seed is in the assert message.
TEST(Failover, ChaosSweepKillPrimaryAtEveryPhase) {
  const double drop_p =
      std::getenv("SMARTSTORE_CHAOS_DROP_P")
          ? std::atof(std::getenv("SMARTSTORE_CHAOS_DROP_P"))
          : 0.02;
  const std::uint32_t delay_us =
      std::getenv("SMARTSTORE_CHAOS_DELAY_US")
          ? static_cast<std::uint32_t>(
                std::atoi(std::getenv("SMARTSTORE_CHAOS_DELAY_US")))
          : 100;
  const std::uint64_t seed =
      std::getenv("SMARTSTORE_CHAOS_SEED")
          ? std::strtoull(std::getenv("SMARTSTORE_CHAOS_SEED"), nullptr, 10)
          : 42;

  struct PhaseSpec {
    const char* name;
    std::uint32_t kill_delay_ms;  ///< after the writer starts
    bool rejoin_then_kill;        ///< restart victim, then kill again
  };
  const PhaseSpec phases[] = {
      {"mid_batch", 0, false},
      {"mid_checkpoint", 25, false},
      {"during_bootstrap", 45, true},
      {"during_promotion_double_failure", 15, true},
  };

  int phase_index = 0;
  for (const PhaseSpec& phase : phases) {
    SCOPED_TRACE(std::string("phase=") + phase.name +
                 " seed=" + std::to_string(seed));
    const auto dir = temp_dir(std::string("chaos_") + phase.name);
    svc::ClusterOptions co = replicated_cluster(dir.string(), 2);
    co.auto_failover = true;
    co.heartbeat_interval_ms = 10;
    co.heartbeat_misses = 2;
    co.store_options.checkpoint_every = 8;  // checkpoints are continuous
    auto cluster = start_or_die(co);

    // Fault-injected client path: drops and delays on every channel.
    rpc::FaultSpec spec;
    spec.drop_request_p = drop_p;
    spec.drop_response_p = drop_p;
    spec.delay_p = 0.05;
    spec.delay_us = delay_us;
    spec.seed = seed + static_cast<std::uint64_t>(phase_index) * 1000;
    std::vector<std::shared_ptr<rpc::Channel>> channels;
    for (std::uint32_t n = 0; n < cluster->num_nodes(); ++n) {
      channels.push_back(
          std::make_shared<rpc::FaultChannel>(cluster->Connect(n), spec));
    }
    svc::RouterOptions ro;
    ro.client_id = 1;
    ro.max_attempts = 600;  // patient: must span detect+promote+refresh
    ro.backoff_init_us = 50;
    ro.backoff_max_us = 10'000;
    svc::Router router(channels, cluster->map(), ro);

    constexpr std::uint64_t kTotal = 90;
    std::atomic<int> failures{0};
    std::thread writer([&router, &failures] {
      for (std::uint64_t id = 0; id < kTotal; ++id) {
        if (!router.Put(make_file(id)).ok()) ++failures;
      }
    });

    const std::uint32_t victim = cluster->map().primary_node_of(0);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(phase.kill_delay_ms));
    const bool first_crash = cluster->Crash(victim).ok();
    const bool first_promo = wait_for_epoch(*cluster, 2);

    bool rejoined = true, resynced = true, second_crash = true,
         second_promo = true;
    if (first_crash && first_promo && phase.rejoin_then_kill) {
      // Bring the victim back as a follower (snapshot bootstrap runs
      // against the live load), wait until the promoted primary has
      // certified it ready — before that point the shard is DESIGNED to
      // be unpromotable — then kill the promoted primary too. The
      // manager must hand leadership straight back without losing a
      // single acked write.
      rejoined = cluster->Restart(victim).ok();
      resynced = rejoined && wait_follower_ready(*cluster, victim);
      const std::uint32_t second = cluster->map().primary_node_of(0);
      second_crash = resynced && cluster->Crash(second).ok();
      second_promo = second_crash && wait_for_epoch(*cluster, 3);
    }

    writer.join();  // joined before any assert can bail out of the test
    ASSERT_TRUE(first_crash);
    ASSERT_TRUE(first_promo) << "promotion never happened";
    ASSERT_TRUE(rejoined) << "victim could not rejoin as a follower";
    ASSERT_TRUE(resynced) << "rejoined follower never certified ready";
    ASSERT_TRUE(second_crash);
    ASSERT_TRUE(second_promo) << "second promotion hung";
    ASSERT_EQ(failures.load(), 0)
        << "a patient client must ride out every failover";

    // Oracle equivalence: every acked id present exactly once; the
    // merged scatter equals the sorted oracle id list.
    for (std::uint64_t id = 0; id < kTotal; ++id) {
      auto r = router.Point(trace_name(id));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE(r->found) << trace_name(id) << " lost (acked write)";
      EXPECT_EQ(r->id, id);
    }
    metadata::RangeQuery rq;  // covers every attr value make_file produces
    rq.dims = metadata::AttrSubset({metadata::Attr::kFileSize});
    rq.lo = {0.0};
    rq.hi = {1000.0};
    auto range = router.Range(rq);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    ASSERT_EQ(range->ids.size(), kTotal);
    for (std::uint64_t id = 0; id < kTotal; ++id) {
      EXPECT_EQ(range->ids[id], id);
    }
    std::uint64_t hosted = 0;
    for (std::uint32_t s = 0; s < cluster->num_shards(); ++s) {
      auto stats = router.Stats(s);
      ASSERT_TRUE(stats.ok());
      hosted += stats->total_files;
    }
    EXPECT_EQ(hosted, kTotal) << "exactly-once violated across failover";

    ASSERT_TRUE(cluster->Stop().ok());
    std::filesystem::remove_all(dir);
    ++phase_index;
  }
}

}  // namespace
