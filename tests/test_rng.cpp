// Unit tests for the deterministic RNG and distributions.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace smartstore::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(777);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(777);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(7);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
  for (auto v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussMomentsMatch) {
  Rng r(10);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gauss();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussShiftScale) {
  Rng r(11);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.gauss(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.lognormal(2.0, 1.5), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(14);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(15);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Rng r(16);
  ZipfGenerator z(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(r)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, RanksWithinBounds) {
  Rng r(17);
  ZipfGenerator z(50, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(r), 50u);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng r(18);
  ZipfGenerator z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Zipf, HeavySkewConcentratesMass) {
  Rng r(19);
  ZipfGenerator z(10000, 1.2);
  int top100 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (z.sample(r) < 100) ++top100;
  // With theta=1.2 the first 100 of 10k ranks should carry most mass.
  EXPECT_GT(static_cast<double>(top100) / n, 0.5);
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, CdfMonotoneAndSamplable) {
  const double theta = GetParam();
  Rng r(20);
  ZipfGenerator z(256, theta);
  std::vector<int> counts(256, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(r)];
  // Frequency must be (statistically) non-increasing in rank for the first
  // few ranks whenever theta > 0.
  if (theta > 0.2) EXPECT_GE(counts[0], counts[128]);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfParamTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.99, 1.05,
                                           1.2, 2.0));

}  // namespace
}  // namespace smartstore::util
