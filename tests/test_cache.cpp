// Tests for the caching module: LRU semantics and the semantic prefetching
// application of Sections 1.1 / 5.3.
#include "cache/lru.h"
#include "cache/semantic_cache.h"

#include <gtest/gtest.h>

#include "trace/synth.h"

namespace smartstore::cache {
namespace {

TEST(LruCache, HitMissAccounting) {
  LruCache c(2);
  EXPECT_FALSE(c.access(1));  // miss, admitted
  EXPECT_TRUE(c.access(1));   // hit
  EXPECT_FALSE(c.access(2));
  EXPECT_TRUE(c.access(2));
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.access(1);
  c.access(2);
  c.access(1);   // 1 is now MRU
  c.access(3);   // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, PrefetchDoesNotCountAsAccess) {
  LruCache c(4);
  EXPECT_TRUE(c.prefetch(9));
  EXPECT_FALSE(c.prefetch(9));  // already present
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.stats().prefetches, 1u);
  EXPECT_TRUE(c.access(9));  // prefetched item now hits
}

TEST(LruCache, CapacityRespected) {
  LruCache c(3);
  for (std::uint64_t i = 0; i < 100; ++i) c.access(i);
  EXPECT_EQ(c.size(), 3u);
}

TEST(LruCache, ResetStats) {
  LruCache c(2);
  c.access(1);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
}

class SemanticCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 5,
                                             /*downscale=*/10);
    core::Config cfg;
    cfg.num_units = 12;
    cfg.fanout = 4;
    store_ = std::make_unique<core::SmartStore>(cfg);
    store_->build(trace_.files());
    for (const auto& f : trace_.files()) by_id_[f.id] = &f;
  }

  trace::SyntheticTrace trace_{};
  std::unique_ptr<core::SmartStore> store_;
  std::unordered_map<metadata::FileId, const metadata::FileMetadata*> by_id_;
};

TEST_F(SemanticCacheTest, PrefetchingImprovesHitRateOverLru) {
  const std::size_t capacity = trace_.files().size() / 20;
  LruCache lru(capacity);
  SemanticPrefetchCache sem(*store_, capacity, /*k=*/8);

  const std::size_t n_ops = std::min<std::size_t>(trace_.ops().size(), 3000);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const auto& op = trace_.ops()[i];
    lru.access(op.file);
    sem.access(*by_id_.at(op.file), op.time);
  }
  // Correlated files are co-accessed in the synthetic workload, so
  // semantic prefetching must beat pure recency.
  EXPECT_GT(sem.stats().hit_rate(), lru.stats().hit_rate());
}

TEST_F(SemanticCacheTest, PrefetchCostsAreAccounted) {
  SemanticPrefetchCache sem(*store_, 64, 4);
  sem.access(trace_.files()[0], 0.0);
  EXPECT_GT(sem.prefetch_latency_total(), 0.0);
  EXPECT_GT(sem.prefetch_messages_total(), 0u);
}

TEST_F(SemanticCacheTest, PrefetchedNeighborsAreCorrelated) {
  SemanticPrefetchCache sem(*store_, 256, 8);
  const auto& f = trace_.files()[17];
  sem.access(f, 0.0);
  // A second access to the same file must hit.
  EXPECT_TRUE(sem.access(f, 1.0));
}

}  // namespace
}  // namespace smartstore::cache
