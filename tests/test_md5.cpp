// RFC 1321 conformance tests for the MD5 implementation.
#include "bloom/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace smartstore::bloom {
namespace {

// The seven official RFC 1321 test vectors.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .hex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5("1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890")
                .hex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  Md5 h;
  for (char c : s) h.update(&c, 1);
  EXPECT_EQ(h.finalize().hex(), md5(s).hex());
}

TEST(Md5, ChunkedUpdatesAcrossBlockBoundary) {
  std::string s(200, 'x');
  for (std::size_t split = 0; split < s.size(); split += 37) {
    Md5 h;
    h.update(s.substr(0, split));
    h.update(s.substr(split));
    EXPECT_EQ(h.finalize().hex(), md5(s).hex());
  }
}

TEST(Md5, ExactBlockLengths) {
  // 55, 56, 63, 64, 65 bytes exercise the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 128u}) {
    std::string s(len, 'b');
    Md5 h;
    h.update(s);
    EXPECT_EQ(h.finalize(), md5(s)) << "len=" << len;
  }
}

TEST(Md5, WordsSplit128BitsIntoFour32Bit) {
  const Md5Digest d = md5("abc");
  const auto w = d.words();
  // Reassemble little-endian words into bytes and compare.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(static_cast<std::uint8_t>((w[i] >> (8 * j)) & 0xff),
                d.bytes[i * 4 + j]);
    }
  }
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(md5("file_a.dat"), md5("file_b.dat"));
  EXPECT_NE(md5("/sub0/u1/f1"), md5("/sub1/u1/f1"));
}

TEST(Md5, BinaryDataWithEmbeddedNuls) {
  const char data[] = {0x00, 0x01, 0x02, 0x00, 0x03};
  const auto d1 = md5(data, sizeof(data));
  const auto d2 = md5(data, sizeof(data));
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, md5(data, sizeof(data) - 1));
}

}  // namespace
}  // namespace smartstore::bloom
