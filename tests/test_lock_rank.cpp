// Runtime lock-order validator (util/lock_rank.h + util/annotated_mutex.h
// + core/striped_locks.h): the dynamic half of the lock-discipline
// machinery. The positive cases drive full descending-rank chains; the
// violation cases are death tests keyed on the "lock-rank violation"
// diagnostic the validator prints before aborting (it aborts BEFORE
// blocking, so an ordering bug dies loudly instead of deadlocking).
#include <gtest/gtest.h>

#include "core/striped_locks.h"
#include "util/annotated_mutex.h"
#include "util/lock_rank.h"

namespace {

using smartstore::core::StripedMutexPool;
using smartstore::core::maybe_lock;
using smartstore::util::LockRank;
using smartstore::util::Mutex;
using smartstore::util::MutexLock;
using smartstore::util::ReaderLock;
using smartstore::util::SharedMutex;
using smartstore::util::WriterLock;

#ifndef SMARTSTORE_LOCK_RANK_ACTIVE

TEST(LockRankTest, ValidatorCompiledOut) {
  GTEST_SKIP() << "lock-rank validator inactive (release build without "
                  "SMARTSTORE_LOCK_RANK_CHECKS)";
}

#else  // SMARTSTORE_LOCK_RANK_ACTIVE

using smartstore::util::LockOrderValidator;

// The store's full descending chain, shared_mutex levels included, in the
// documented global order: every acquire strictly above everything held.
TEST(LockRankTest, InOrderChainPasses) {
  SharedMutex lifecycle{LockRank::kLifecycle};
  Mutex ckpt{LockRank::kDbCheckpoint};
  SharedMutex shape{LockRank::kShape};
  Mutex unit{LockRank::kUnit};
  StripedMutexPool summaries{LockRank::kSummaryStripe};
  Mutex freeze{LockRank::kFreeze};
  Mutex wal_shard{LockRank::kWalShard};
  int dummy = 0;

  const ReaderLock lk(lifecycle);
  const MutexLock ck(ckpt);
  const ReaderLock shared(shape);
  const MutexLock ul(unit);
  const auto stripe = maybe_lock(&summaries, &dummy);
  const MutexLock fz(freeze);
  const MutexLock ws(wal_shard);
  EXPECT_EQ(LockOrderValidator::held_count(), 7);  // a kLeaf would not count
}

TEST(LockRankTest, ReleaseUnwindsStack) {
  Mutex shape_level{LockRank::kShape};
  {
    const MutexLock lock(shape_level);
    EXPECT_EQ(LockOrderValidator::held_count(), 1);
    EXPECT_TRUE(LockOrderValidator::holds(&shape_level));
  }
  EXPECT_EQ(LockOrderValidator::held_count(), 0);
  EXPECT_FALSE(LockOrderValidator::holds(&shape_level));
  // Re-acquiring after release is not "recursive": the stack is clean.
  const MutexLock again(shape_level);
  EXPECT_EQ(LockOrderValidator::held_count(), 1);
}

// The striping discipline: a walker locks a child stripe, releases, then
// locks the parent's — sequential same-rank acquisition is legal.
TEST(LockRankTest, StripeClimbOneAtATimePasses) {
  StripedMutexPool pool{LockRank::kSummaryStripe};
  int child = 0, parent = 0;
  {
    const auto child_guard = maybe_lock(&pool, &child);
    EXPECT_EQ(LockOrderValidator::held_count(), 1);
  }
  {
    const auto parent_guard = maybe_lock(&pool, &parent);
    EXPECT_EQ(LockOrderValidator::held_count(), 1);
  }
  EXPECT_EQ(LockOrderValidator::held_count(), 0);
}

TEST(LockRankTest, NullPoolGuardIsEmpty) {
  int obj = 0;
  const auto guard = maybe_lock(nullptr, &obj);
  EXPECT_EQ(LockOrderValidator::held_count(), 0);
}

TEST(LockRankTest, LeafLocksAreUntracked) {
  Mutex leaf;  // default rank: kLeaf
  Mutex shape_level{LockRank::kShape};
  const MutexLock a(shape_level);
  const MutexLock b(leaf);  // leaf under anything: fine, and untracked
  EXPECT_EQ(LockOrderValidator::held_count(), 1);
  EXPECT_FALSE(LockOrderValidator::holds(&leaf));
}

TEST(LockRankTest, AssertHeldPassesWhenHeld) {
  Mutex unit{LockRank::kUnit};
  const MutexLock lock(unit);
  unit.assert_held();  // must not abort

  StripedMutexPool pool{LockRank::kSyncStripe};
  int obj = 0;
  const auto guard = maybe_lock(&pool, &obj);
  pool.assert_held(&obj);  // must not abort
}

TEST(LockRankDeathTest, InvertedOrderDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex unit{LockRank::kUnit};
  SharedMutex shape{LockRank::kShape};
  EXPECT_DEATH(
      {
        const MutexLock ul(unit);
        const WriterLock ex(shape);  // shape ABOVE unit: climbing back up
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SharedAcquisitionsAreOrderedToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex lifecycle{LockRank::kLifecycle};
  SharedMutex shape{LockRank::kShape};
  EXPECT_DEATH(
      {
        const ReaderLock inner(shape);
        const ReaderLock outer(lifecycle);  // readers follow the order too
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, TwoStripesHeldTogetherDie) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StripedMutexPool pool{LockRank::kSummaryStripe};
  int child = 0, parent = 0;
  EXPECT_DEATH(
      {
        const auto child_guard = maybe_lock(&pool, &child);
        const auto parent_guard = maybe_lock(&pool, &parent);  // held pair
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, CrossPoolStripePairDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StripedMutexPool summaries{LockRank::kSummaryStripe};
  StripedMutexPool sync{LockRank::kSyncStripe};
  int a = 0, b = 0;
  EXPECT_DEATH(
      {
        const auto sync_guard = maybe_lock(&sync, &a);
        const auto node_guard = maybe_lock(&summaries, &b);  // 30 under 40
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, RecursiveAcquisitionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex unit{LockRank::kUnit};
  EXPECT_DEATH(
      {
        const MutexLock outer(unit);
        unit.lock();  // same mutex again: rejected before it deadlocks
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, AssertHeldWithoutLockDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex unit{LockRank::kUnit};
  EXPECT_DEATH(unit.assert_held(), "lock-rank violation");

  StripedMutexPool pool{LockRank::kSyncStripe};
  int obj = 0;
  EXPECT_DEATH(pool.assert_held(&obj), "lock-rank violation");
}

#endif  // SMARTSTORE_LOCK_RANK_ACTIVE

}  // namespace
