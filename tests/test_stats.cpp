// Tests for statistics helpers and the row standardizer.
#include "la/stats.h"

#include <gtest/gtest.h>

namespace smartstore::la {
namespace {

TEST(Stats, MeanAndStdev) {
  const Vector v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stdev(v), 2.0);  // classic population-stdev example
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, Percentiles) {
  Vector v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 100.0);
  EXPECT_NEAR(percentile(v, 50), 50.5, 1e-9);
}

TEST(RowStandardizer, ZScoresRows) {
  Matrix a(2, 4);
  a.set_row(0, {1, 2, 3, 4});
  a.set_row(1, {10, 10, 10, 10});  // constant row
  const RowStandardizer s = RowStandardizer::fit(a);
  Matrix b = a;
  s.apply(b);
  // Row 0: mean 2.5, zero-mean after standardization.
  EXPECT_NEAR(mean(b.row(0)), 0.0, 1e-12);
  EXPECT_NEAR(stdev(b.row(0)), 1.0, 1e-12);
  // Constant row maps to zeros.
  for (double x : b.row(1)) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(RowStandardizer, TransformSingleVector) {
  Matrix a(2, 3);
  a.set_row(0, {0, 10, 20});
  a.set_row(1, {5, 5, 5});
  const RowStandardizer s = RowStandardizer::fit(a);
  const Vector t = s.transform({10, 7});
  EXPECT_NEAR(t[0], 0.0, 1e-12);  // 10 is the row-0 mean
  EXPECT_DOUBLE_EQ(t[1], 0.0);    // constant row collapses
}

TEST(RowStandardizer, TransformMatchesApply) {
  Matrix a(3, 5);
  a.set_row(0, {1, 2, 3, 4, 5});
  a.set_row(1, {-1, 0, 2, 0, -1});
  a.set_row(2, {100, 200, 150, 120, 180});
  const RowStandardizer s = RowStandardizer::fit(a);
  Matrix b = a;
  s.apply(b);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const Vector col = s.transform(a.col(j));
    for (std::size_t i = 0; i < a.rows(); ++i)
      EXPECT_NEAR(col[i], b(i, j), 1e-12);
  }
}

}  // namespace
}  // namespace smartstore::la
