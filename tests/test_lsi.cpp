// Tests for the LSI engine: projection consistency, rank selection,
// similarity structure of clustered data.
#include "lsi/lsi.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace smartstore::lsi {
namespace {

/// Two well-separated clusters of documents in 6-dim attribute space.
std::vector<la::Vector> clustered_docs(std::size_t per_cluster,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<la::Vector> docs;
  const la::Vector c1{100, 5, 3, 50, 2, 9};
  const la::Vector c2{-80, 90, -20, 1, 60, -5};
  for (std::size_t i = 0; i < per_cluster; ++i) {
    la::Vector d1(6), d2(6);
    for (int j = 0; j < 6; ++j) {
      d1[j] = c1[j] + rng.gauss(0, 2);
      d2[j] = c2[j] + rng.gauss(0, 2);
    }
    docs.push_back(d1);
    docs.push_back(d2);
  }
  return docs;
}

TEST(Lsi, EmptyInputUnfitted) {
  const LsiModel m = LsiModel::fit({}, 2);
  EXPECT_FALSE(m.fitted());
  EXPECT_EQ(m.num_docs(), 0u);
}

TEST(Lsi, FitBasicShape) {
  const auto docs = clustered_docs(10, 1);
  const LsiModel m = LsiModel::fit(docs, 3);
  EXPECT_TRUE(m.fitted());
  EXPECT_EQ(m.num_docs(), docs.size());
  EXPECT_LE(m.rank(), 3u);
  EXPECT_EQ(m.dims(), 6u);
  for (std::size_t i = 0; i < docs.size(); ++i)
    EXPECT_EQ(m.doc_coords(i).size(), m.rank());
}

TEST(Lsi, ProjectionOfDocMatchesDocCoords) {
  // q̂ = Σ⁻¹ Uᵀ q equals the document's V-row when q is that document.
  const auto docs = clustered_docs(8, 2);
  const LsiModel m = LsiModel::fit(docs, 0, 0.9999);
  for (std::size_t i = 0; i < docs.size(); i += 5) {
    const la::Vector p = m.project(docs[i]);
    const la::Vector& v = m.doc_coords(i);
    ASSERT_EQ(p.size(), v.size());
    for (std::size_t k = 0; k < p.size(); ++k) EXPECT_NEAR(p[k], v[k], 1e-8);
  }
}

TEST(Lsi, SimilarityHighWithinClusterLowAcross) {
  const auto docs = clustered_docs(20, 3);  // even = cluster1, odd = cluster2
  const LsiModel m = LsiModel::fit(docs, 2);
  double within = 0, across = 0;
  int wn = 0, an = 0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (std::size_t j = i + 1; j < docs.size(); ++j) {
      const double s =
          LsiModel::similarity(m.doc_coords(i), m.doc_coords(j));
      if ((i % 2) == (j % 2)) {
        within += s;
        ++wn;
      } else {
        across += s;
        ++an;
      }
    }
  }
  EXPECT_GT(within / wn, 0.9);
  EXPECT_LT(across / an, 0.2);
}

TEST(Lsi, SimilarityToDocIdentifiesCluster) {
  const auto docs = clustered_docs(15, 4);
  const LsiModel m = LsiModel::fit(docs, 2);
  // A fresh vector near cluster 1 must be most similar to cluster-1 docs.
  la::Vector probe{101, 6, 2, 49, 3, 8};
  const double sim_c1 = m.similarity_to_doc(probe, 0);   // even = cluster 1
  const double sim_c2 = m.similarity_to_doc(probe, 1);   // odd = cluster 2
  EXPECT_GT(sim_c1, sim_c2);
  EXPECT_GT(sim_c1, 0.8);
}

TEST(Lsi, AutoRankCapturesEnergy) {
  const auto docs = clustered_docs(16, 5);
  const LsiModel m = LsiModel::fit(docs, 0, 0.9);
  // Two clusters in 6 dims: 1-2 dominant directions should suffice.
  EXPECT_LE(m.rank(), 3u);
  EXPECT_GE(m.rank(), 1u);
}

TEST(Lsi, RankClampedToNumericalRank) {
  // Rank-1 data can't produce a rank-5 model.
  std::vector<la::Vector> docs;
  for (int i = 1; i <= 10; ++i)
    docs.push_back({1.0 * i, 2.0 * i, 3.0 * i});
  const LsiModel m = LsiModel::fit(docs, 5);
  EXPECT_LE(m.rank(), 2u);  // standardization may add one direction
}

TEST(Lsi, PairwiseSimilarityMatrixSymmetricUnitDiagonal) {
  const auto docs = clustered_docs(5, 6);
  const LsiModel m = LsiModel::fit(docs, 2);
  const la::Matrix s = m.pairwise_doc_similarity();
  ASSERT_EQ(s.rows(), docs.size());
  for (std::size_t i = 0; i < s.rows(); ++i) {
    EXPECT_DOUBLE_EQ(s(i, i), 1.0);
    for (std::size_t j = 0; j < s.cols(); ++j) {
      EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
      EXPECT_LE(s(i, j), 1.0 + 1e-9);
      EXPECT_GE(s(i, j), -1.0 - 1e-9);
    }
  }
}

TEST(Lsi, ByteSizeNonTrivial) {
  const auto docs = clustered_docs(10, 7);
  const LsiModel m = LsiModel::fit(docs, 2);
  EXPECT_GT(m.byte_size(), sizeof(LsiModel));
}

class LsiRankTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LsiRankTest, ProjectionDimensionTracksRank) {
  const auto docs = clustered_docs(20, 8);
  const LsiModel m = LsiModel::fit(docs, GetParam());
  EXPECT_LE(m.rank(), GetParam());
  EXPECT_EQ(m.project(docs[0]).size(), m.rank());
}

INSTANTIATE_TEST_SUITE_P(Ranks, LsiRankTest, ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace smartstore::lsi
