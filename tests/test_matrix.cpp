// Unit tests for the dense matrix/vector substrate.
#include "la/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace smartstore::la {
namespace {

TEST(Matrix, IdentityDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, RowColRoundTrip) {
  Matrix m(2, 3);
  m.set_row(0, {1, 2, 3});
  m.set_row(1, {4, 5, 6});
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  m.set_col(0, {9, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 9);
  EXPECT_DOUBLE_EQ(m(1, 0), 8);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m(2, 3);
  m.set_row(0, {1, 2, 3});
  m.set_row(1, {4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_NEAR(Matrix::max_abs_diff(t.transposed(), m), 0.0, 0.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a.set_row(0, {1, 2});
  a.set_row(1, {3, 4});
  b.set_row(0, {5, 6});
  b.set_row(1, {7, 8});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a(3, 3);
  a.set_row(0, {1, 2, 3});
  a.set_row(1, {4, 5, 6});
  a.set_row(2, {7, 8, 9});
  EXPECT_EQ(Matrix::max_abs_diff(a.multiply(Matrix::identity(3)), a), 0.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a(2, 3);
  a.set_row(0, {1, 0, 2});
  a.set_row(1, {0, 3, 1});
  const Vector v{2, 1, 4};
  const Vector out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 10);
  EXPECT_DOUBLE_EQ(out[1], 7);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Matrix a(3, 2);
  a.set_row(0, {1, 2});
  a.set_row(1, {3, 4});
  a.set_row(2, {5, 6});
  const Matrix g = a.gram();  // A^T A, 2x2
  const Matrix expect = a.transposed().multiply(a);
  EXPECT_LT(Matrix::max_abs_diff(g, expect), 1e-12);
}

TEST(Matrix, OuterGramMatchesExplicitProduct) {
  Matrix a(2, 3);
  a.set_row(0, {1, 2, 3});
  a.set_row(1, {4, 5, 6});
  const Matrix g = a.outer_gram();  // A A^T, 2x2
  const Matrix expect = a.multiply(a.transposed());
  EXPECT_LT(Matrix::max_abs_diff(g, expect), 1e-12);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(1, 2);
  a.set_row(0, {3, 4});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
}

TEST(VectorOps, Distances) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorOps, CosineSimilarity) {
  EXPECT_NEAR(cosine_similarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(cosine_similarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cosine_similarity({0, 0}, {1, 2}), 0.0);  // zero vector
}

TEST(VectorOps, AddSubScale) {
  EXPECT_EQ(add({1, 2}, {3, 4}), (Vector{4, 6}));
  EXPECT_EQ(sub({3, 4}, {1, 2}), (Vector{2, 2}));
  EXPECT_EQ(scale({1, -2}, 3.0), (Vector{3, -6}));
}

}  // namespace
}  // namespace smartstore::la
