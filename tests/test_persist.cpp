// The crash-consistent persistence layer: binary io bounds checking, CRC32
// vectors, snapshot round-trip fidelity (identical query results on an
// HP-profile deployment), corruption detection, WAL group commit, torn-tail
// recovery to the last commit boundary, and the checkpoint/recover protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "core/ground_truth.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "trace/query_gen.h"
#include "trace/synth.h"
#include "util/binary_io.h"
#include "util/crc32.h"

namespace smartstore::persist {
namespace {

using core::Config;
using core::Routing;
using core::SmartStore;
using metadata::AttrSubset;
using metadata::FileId;
using metadata::FileMetadata;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("smartstore_persist_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ---- binary io --------------------------------------------------------------

TEST(BinaryIo, PrimitivesRoundTrip) {
  util::BinaryWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_f64(-1234.5678);
  w.write_bool(true);
  w.write_string("hello, store");
  w.write_vec_f64({1.0, -2.5, 1e300});
  w.write_vec_size({0, 42, static_cast<std::size_t>(-1)});

  util::BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.read_f64(), -1234.5678);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read_string(), "hello, store");
  EXPECT_EQ(r.read_vec_f64(), (std::vector<double>{1.0, -2.5, 1e300}));
  EXPECT_EQ(r.read_vec_size(),
            (std::vector<std::size_t>{0, 42, static_cast<std::size_t>(-1)}));
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIo, ReadPastEndThrows) {
  util::BinaryWriter w;
  w.write_u32(7);
  util::BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_THROW(r.read_u8(), util::BinaryIoError);
}

TEST(BinaryIo, GarbageLengthPrefixRejectedBeforeAllocation) {
  util::BinaryWriter w;
  w.write_u64(static_cast<std::uint64_t>(-1));  // absurd element count
  util::BinaryReader r(w.buffer());
  EXPECT_THROW(r.read_vec_f64(), util::BinaryIoError);
}

TEST(BinaryIo, TruncatedStringThrows) {
  util::BinaryWriter w;
  w.write_string("0123456789");
  std::vector<std::uint8_t> cut(w.buffer().begin(), w.buffer().end() - 4);
  util::BinaryReader r(cut);
  EXPECT_THROW(r.read_string(), util::BinaryIoError);
}

TEST(Crc32, KnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0x00000000u);
  // Incremental == one-shot.
  std::uint32_t st = util::crc32_init();
  st = util::crc32_update(st, "1234", 4);
  st = util::crc32_update(st, "56789", 5);
  EXPECT_EQ(util::crc32_final(st), 0xCBF43926u);
}

// ---- snapshot ---------------------------------------------------------------

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // HP-profile deployment, per the acceptance criterion.
    trace_ = trace::SyntheticTrace::generate(trace::hp_profile(), /*tif=*/1,
                                             /*seed=*/42, /*downscale=*/10);
    Config cfg;
    cfg.num_units = 16;
    cfg.fanout = 5;
    cfg.seed = 7;
    store_ = std::make_unique<SmartStore>(cfg);
    store_->build(trace_.files());
  }

  trace::SyntheticTrace trace_{};
  std::unique_ptr<SmartStore> store_;
};

TEST_F(SnapshotTest, RoundTripPreservesStructure) {
  const std::string dir = temp_dir("structure");
  const std::string path = snapshot_path(dir);
  save_snapshot(*store_, path);

  auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded);
  EXPECT_TRUE(loaded->check_invariants());
  EXPECT_EQ(loaded->total_files(), store_->total_files());
  ASSERT_EQ(loaded->units().size(), store_->units().size());
  for (std::size_t u = 0; u < store_->units().size(); ++u) {
    EXPECT_EQ(loaded->units()[u].file_count(), store_->units()[u].file_count());
  }
  EXPECT_EQ(loaded->tree().num_nodes(), store_->tree().num_nodes());
  EXPECT_EQ(loaded->tree().height(), store_->tree().height());
  EXPECT_EQ(loaded->tree().groups(), store_->tree().groups());
  EXPECT_EQ(loaded->tree().root_replicas(), store_->tree().root_replicas());
  EXPECT_EQ(loaded->config().version_ratio, store_->config().version_ratio);
}

TEST_F(SnapshotTest, RoundTripYieldsIdenticalQueryResults) {
  const std::string dir = temp_dir("queries");
  const std::string path = snapshot_path(dir);
  save_snapshot(*store_, path);
  auto loaded = load_snapshot(path);

  // Pre-generate the batches so both stores see the same query stream;
  // both stores start from the same persisted rng state, so routing draws
  // coincide too.
  trace::QueryGenerator gen(trace_, trace::QueryDistribution::kZipf, 99);
  const auto dims = AttrSubset::all();
  std::vector<metadata::PointQuery> points;
  std::vector<metadata::RangeQuery> ranges;
  std::vector<metadata::TopKQuery> topks;
  for (int i = 0; i < 120; ++i) points.push_back(gen.gen_point());
  for (int i = 0; i < 40; ++i) ranges.push_back(gen.gen_range(dims));
  for (int i = 0; i < 40; ++i) topks.push_back(gen.gen_topk(dims, 8));

  for (const auto& q : points) {
    const auto a = store_->point_query(q, Routing::kOffline, 0.0);
    const auto b = loaded->point_query(q, Routing::kOffline, 0.0);
    EXPECT_EQ(a.found, b.found) << "point query diverged on " << q.filename;
    if (a.found && b.found) {
      EXPECT_EQ(a.id, b.id);
    }
  }
  double recall_a = 0, recall_b = 0;
  for (const auto& q : ranges) {
    auto a = store_->range_query(q, Routing::kOffline, 0.0).ids;
    auto b = loaded->range_query(q, Routing::kOffline, 0.0).ids;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    const auto truth = core::brute_force_range(trace_.files(), q);
    recall_a += core::recall(truth, a);
    recall_b += core::recall(truth, b);
  }
  EXPECT_DOUBLE_EQ(recall_a, recall_b);
  for (const auto& q : topks) {
    auto a = store_->topk_query(q, Routing::kOffline, 0.0).ids();
    auto b = loaded->topk_query(q, Routing::kOffline, 0.0).ids();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST_F(SnapshotTest, SurvivesPostBuildMutations) {
  // Insert + delete before snapshotting so pending deltas, sealed versions
  // and conservative (unshrunk) MBRs all hit the codec.
  const auto extra = trace_.make_insert_stream(25, 1234);
  for (const auto& f : extra) store_->insert_file(f, 0.0);
  for (int i = 0; i < 5; ++i)
    store_->delete_file(trace_.files()[i * 31].name, 0.0);
  ASSERT_TRUE(store_->check_invariants());

  const std::string dir = temp_dir("mutated");
  save_snapshot(*store_, snapshot_path(dir));
  auto loaded = load_snapshot(snapshot_path(dir));
  EXPECT_TRUE(loaded->check_invariants());
  EXPECT_EQ(loaded->total_files(), store_->total_files());
  // The deleted files stay gone; the inserted ones stay present.
  for (const auto& f : extra) {
    const auto res = loaded->point_query({f.name}, Routing::kOnline, 0.0);
    EXPECT_TRUE(res.found) << f.name;
  }
}

TEST_F(SnapshotTest, CorruptedSectionFailsLoad) {
  const std::string dir = temp_dir("corrupt");
  const std::string path = snapshot_path(dir);
  save_snapshot(*store_, path);

  auto bytes = util::read_file_bytes(path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-file
  util::write_file_atomic(path, bytes);
  EXPECT_THROW(load_snapshot(path), PersistError);
}

TEST_F(SnapshotTest, TruncatedFileFailsLoad) {
  const std::string dir = temp_dir("truncated");
  const std::string path = snapshot_path(dir);
  save_snapshot(*store_, path);

  auto bytes = util::read_file_bytes(path);
  bytes.resize(bytes.size() * 3 / 4);
  util::write_file_atomic(path, bytes);
  EXPECT_THROW(load_snapshot(path), PersistError);
}

TEST_F(SnapshotTest, BadMagicFailsLoad) {
  const std::string dir = temp_dir("magic");
  const std::string path = snapshot_path(dir);
  util::write_file_atomic(path, {'n', 'o', 't', 'a', 's', 'n', 'a', 'p',
                                 0, 0, 0, 0});
  EXPECT_THROW(load_snapshot(path), PersistError);
}

// ---- WAL --------------------------------------------------------------------

TEST(Wal, GroupCommitBatchesRecords) {
  const std::string dir = temp_dir("wal_batch");
  const std::string path = wal_path(dir);
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  const auto stream = tr.make_insert_stream(10, 5);

  {
    WalWriter wal(path, /*group_commit=*/4);
    for (const auto& f : stream) wal.log_insert(f);
    // 10 records at batch 4: blocks of 4+4 committed, 2 still pending.
    EXPECT_EQ(wal.committed_records(), 8u);
    EXPECT_EQ(wal.pending_records(), 2u);
  }  // destructor commits the tail batch

  const WalScan scan = scan_wal(path);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.blocks, 3u);
  ASSERT_EQ(scan.records.size(), 10u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(scan.records[i].type, WalRecordType::kInsert);
    EXPECT_EQ(scan.records[i].file.id, stream[i].id);
    EXPECT_EQ(scan.records[i].file.name, stream[i].name);
  }
}

TEST(Wal, RemoveRecordsRoundTrip) {
  const std::string dir = temp_dir("wal_remove");
  const std::string path = wal_path(dir);
  {
    WalWriter wal(path, 2);
    wal.log_remove("some/file.txt");
    wal.log_remove("other/file.bin");
  }
  const WalScan scan = scan_wal(path);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kRemove);
  EXPECT_EQ(scan.records[0].name, "some/file.txt");
  EXPECT_EQ(scan.records[1].name, "other/file.bin");
}

TEST(Wal, TornTailRecoversToLastCommitBoundary) {
  const std::string dir = temp_dir("wal_torn");
  const std::string path = wal_path(dir);
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  const auto stream = tr.make_insert_stream(12, 5);

  {
    WalWriter wal(path, /*group_commit=*/4);
    for (const auto& f : stream) wal.log_insert(f);
  }  // 3 complete blocks of 4

  // Crash mid-append: chop into the last block's payload.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 17);

  const WalScan scan = scan_wal(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.blocks, 2u);
  EXPECT_EQ(scan.records.size(), 8u);  // the last group commit is the cutoff

  // Reopening for append truncates the tear; new records land after the
  // valid prefix and the log scans clean again.
  {
    WalWriter wal(path, 4);
    EXPECT_EQ(wal.committed_records(), 8u);
    wal.log_insert(stream[8]);
    wal.commit();
  }
  const WalScan rescan = scan_wal(path);
  EXPECT_FALSE(rescan.torn_tail);
  EXPECT_EQ(rescan.records.size(), 9u);
}

TEST(Wal, CorruptedBlockChecksumStopsScan) {
  const std::string dir = temp_dir("wal_crc");
  const std::string path = wal_path(dir);
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  const auto stream = tr.make_insert_stream(8, 5);
  {
    WalWriter wal(path, 4);
    for (const auto& f : stream) wal.log_insert(f);
  }
  auto bytes = util::read_file_bytes(path);
  bytes[bytes.size() - 10] ^= 0x01;  // corrupt the second block's payload
  util::write_file_atomic(path, bytes);

  const WalScan scan = scan_wal(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.blocks, 1u);
  EXPECT_EQ(scan.records.size(), 4u);
}

TEST(Wal, MissingFileScansEmpty) {
  const std::string dir = temp_dir("wal_missing");
  const WalScan scan = scan_wal(wal_path(dir));
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(Wal, CraftedHugeRecordCountIsCorruptionNotAllocation) {
  // A block whose header claims 2^32-1 records over a 1-byte payload, with
  // a *valid* checksum: must be treated as a corrupt block (prefix kept),
  // not turned into a multi-gigabyte reserve.
  const std::string dir = temp_dir("wal_hugecount");
  const std::string path = wal_path(dir);
  util::BinaryWriter w;
  w.write_bytes(kWalMagic, sizeof(kWalMagic));
  w.write_u64(12345);  // log generation
  w.write_u32(kWalBlockMagic);
  w.write_u32(0xFFFFFFFFu);  // absurd record count
  w.write_u64(1);            // one payload byte
  const std::uint8_t payload = 0x01;
  w.write_u8(payload);
  w.write_u32(util::crc32(&payload, 1));
  util::write_file_atomic(path, w.buffer());

  const WalScan scan = scan_wal(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.blocks, 0u);
  EXPECT_EQ(scan.records.size(), 0u);
}

TEST(Wal, RebaseDropsFencedPrefixKeepsTailUnderNextGeneration) {
  const std::string dir = temp_dir("wal_rebase");
  const std::string path = wal_path(dir);
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  const auto stream = tr.make_insert_stream(7, 5);

  WalWriter wal(path, /*group_commit=*/2);
  for (const auto& f : stream) wal.log_insert(f);
  wal.commit();
  const std::uint64_t gen = wal.generation();
  ASSERT_EQ(wal.committed_records(), 7u);

  wal.rebase(4);  // a snapshot fenced the first four records
  EXPECT_EQ(wal.generation(), gen + 1);
  EXPECT_EQ(wal.committed_records(), 3u);

  const WalScan scan = scan_wal(path);
  EXPECT_EQ(scan.generation, gen + 1);
  ASSERT_EQ(scan.records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(scan.records[i].file.name, stream[4 + i].name);

  // Appends keep working through the swapped handle.
  wal.log_remove(stream[0].name);
  wal.commit();
  EXPECT_EQ(scan_wal(path).records.size(), 4u);
}

TEST(Wal, LegacyV1LogIsUpgradedBeforeNewRecordTypesAppend) {
  // A v01-magic log must not get v02-only record types appended behind its
  // old header (a rolled-back binary would truncate them as corruption);
  // the writer upgrades magic + preserves generation and records first.
  const std::string dir = temp_dir("wal_v1");
  const std::string path = wal_path(dir);
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  const auto stream = tr.make_insert_stream(2, 5);

  {  // Write a v02 log, then retro-stamp the v01 magic over it.
    WalWriter wal(path, 2);
    for (const auto& f : stream) wal.log_insert(f);
  }
  auto bytes = util::read_file_bytes(path);
  std::memcpy(bytes.data(), kWalMagicV1, sizeof(kWalMagicV1));
  util::write_file_atomic(path, bytes);
  const WalScan legacy = scan_wal(path);
  EXPECT_TRUE(legacy.v1_magic);
  const std::uint64_t gen = legacy.generation;

  {
    WalWriter wal(path, 1);
    EXPECT_EQ(wal.generation(), gen);
    EXPECT_EQ(wal.committed_records(), 2u);
    wal.log_add_unit();  // v02-only record type
  }
  const WalScan upgraded = scan_wal(path);
  EXPECT_FALSE(upgraded.v1_magic);
  EXPECT_EQ(upgraded.generation, gen);
  ASSERT_EQ(upgraded.records.size(), 3u);
  EXPECT_EQ(upgraded.records[0].file.name, stream[0].name);
  EXPECT_EQ(upgraded.records[2].type, WalRecordType::kAddUnit);
}

// ---- checkpoint / recover ---------------------------------------------------

TEST(Recovery, SnapshotPlusWalRestoresAllCommittedMutations) {
  const std::string dir = temp_dir("recover");
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::hp_profile(), 1, 42, /*downscale=*/20);
  Config cfg;
  cfg.num_units = 10;
  cfg.fanout = 5;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());

  checkpoint(store, dir);

  // Post-checkpoint mutations, write-ahead logged as they apply.
  const auto stream = tr.make_insert_stream(9, 77);
  {
    WalWriter wal(wal_path(dir), cfg.version_ratio);
    for (const auto& f : stream) {
      store.insert_file(f, 0.0);
      wal.log_insert(f);
    }
    const std::string victim = tr.files()[3].name;
    store.delete_file(victim, 0.0);
    wal.log_remove(victim);
    wal.commit();
  }

  const RecoveryResult rec = recover(dir);
  ASSERT_TRUE(rec.store);
  EXPECT_FALSE(rec.wal_tail_torn);
  EXPECT_EQ(rec.wal_records, 10u);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_EQ(rec.store->total_files(), store.total_files());

  // Exact membership: every unit-resident file name matches.
  auto names = [](const SmartStore& s) {
    std::set<std::string> out;
    for (const auto& u : s.units())
      for (const auto& f : u.files()) out.insert(f.name);
    return out;
  };
  EXPECT_EQ(names(*rec.store), names(store));
}

TEST(Recovery, TornWalRecoversToCommitBoundary) {
  const std::string dir = temp_dir("recover_torn");
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::hp_profile(), 1, 42, /*downscale=*/20);
  Config cfg;
  cfg.num_units = 10;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  checkpoint(store, dir);
  const std::size_t base_files = store.total_files();

  const auto stream = tr.make_insert_stream(8, 77);
  {
    WalWriter wal(wal_path(dir), /*group_commit=*/4);
    for (const auto& f : stream) wal.log_insert(f);
  }
  // Tear into the second block: only the first group commit must survive.
  std::filesystem::resize_file(wal_path(dir),
                               std::filesystem::file_size(wal_path(dir)) - 9);

  const RecoveryResult rec = recover(dir);
  EXPECT_TRUE(rec.wal_tail_torn);
  EXPECT_EQ(rec.wal_records, 4u);
  EXPECT_EQ(rec.store->total_files(), base_files + 4);
  EXPECT_TRUE(rec.store->check_invariants());
  for (std::size_t i = 0; i < 4; ++i) {
    bool present = false;
    for (const auto& u : rec.store->units())
      if (u.find_by_name(stream[i].name)) present = true;
    EXPECT_TRUE(present) << stream[i].name;
  }
  for (std::size_t i = 4; i < 8; ++i) {
    for (const auto& u : rec.store->units())
      EXPECT_EQ(u.find_by_name(stream[i].name), nullptr);
  }
}

TEST(Recovery, CheckpointEmptiesWal) {
  const std::string dir = temp_dir("checkpoint");
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());

  WalWriter wal(wal_path(dir), 2);
  const auto stream = tr.make_insert_stream(4, 3);
  for (const auto& f : stream) {
    store.insert_file(f, 0.0);
    wal.log_insert(f);
  }
  wal.commit();
  EXPECT_EQ(scan_wal(wal_path(dir)).records.size(), 4u);

  checkpoint(store, dir, &wal);
  EXPECT_EQ(scan_wal(wal_path(dir)).records.size(), 0u);

  // Recovery after the checkpoint sees the mutations exactly once.
  const RecoveryResult rec = recover(dir);
  EXPECT_EQ(rec.wal_records, 0u);
  EXPECT_EQ(rec.store->total_files(), store.total_files());
}

TEST(Recovery, CrashBetweenSnapshotAndWalResetReplaysNothingTwice) {
  // The checkpoint crash window: snapshot renamed into place, WAL not yet
  // emptied. The snapshot's fence must suppress the duplicate replay.
  const std::string dir = temp_dir("ckpt_crash");
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  checkpoint(store, dir);

  const auto stream = tr.make_insert_stream(5, 3);
  {
    WalWriter wal(wal_path(dir), 1);
    for (const auto& f : stream) {
      store.insert_file(f, 0.0);
      wal.log_insert(f);
    }
    // Simulate the crash: preserve the pre-checkpoint log, checkpoint
    // (snapshot + fence land, WAL is reset), then restore the old log as
    // if the reset never hit the disk.
    const std::string saved = wal_path(dir) + ".saved";
    std::filesystem::copy_file(wal_path(dir), saved);
    checkpoint(store, dir, &wal);
    std::filesystem::copy_file(saved, wal_path(dir),
                               std::filesystem::copy_options::overwrite_existing);
  }

  const RecoveryResult rec = recover(dir);
  EXPECT_EQ(rec.wal_fenced, 5u);   // all five suppressed by the fence
  EXPECT_EQ(rec.wal_records, 0u);  // nothing replayed on top
  EXPECT_EQ(rec.store->total_files(), store.total_files());
  EXPECT_TRUE(rec.store->check_invariants());
  // No duplicate records: per-unit name sets match the live store exactly.
  std::multiset<std::string> live, recovered;
  for (const auto& u : store.units())
    for (const auto& f : u.files()) live.insert(f.name);
  for (const auto& u : rec.store->units())
    for (const auto& f : u.files()) recovered.insert(f.name);
  EXPECT_EQ(live, recovered);
}

TEST(Recovery, CheckpointIntoOtherDirLeavesLiveWalIntact) {
  // A writer logging into state/ while checkpointing into backup/: state's
  // log pairs with state's snapshot and must survive; backup's stale log
  // must be emptied (its records are subsumed by the fresh snapshot).
  const std::string state = temp_dir("ckpt_state");
  const std::string backup = temp_dir("ckpt_backup");
  trace::SyntheticTrace tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/50);
  Config cfg;
  cfg.num_units = 6;
  cfg.seed = 7;
  SmartStore store(cfg);
  store.build(tr.files());
  checkpoint(store, state);

  {
    WalWriter stale(wal_path(backup), 1);
    stale.log_remove("stale-record");
  }

  const auto stream = tr.make_insert_stream(3, 3);
  WalWriter wal(wal_path(state), 1);
  for (const auto& f : stream) {
    store.insert_file(f, 0.0);
    wal.log_insert(f);
  }

  checkpoint(store, backup, &wal);
  // state/ still recovers through its own WAL records...
  EXPECT_EQ(scan_wal(wal_path(state)).records.size(), 3u);
  EXPECT_EQ(recover(state).store->total_files(), store.total_files());
  // ...and backup/ replays nothing stale over the fresh snapshot.
  EXPECT_EQ(scan_wal(wal_path(backup)).records.size(), 0u);
  EXPECT_EQ(recover(backup).store->total_files(), store.total_files());
}

}  // namespace
}  // namespace smartstore::persist
