// The incremental-checkpoint engine, end to end: delta cuts and recovery
// round trips at the persist layer (DeltaEngine over a sharded WAL),
// chain folds and pruning, offline reconstruction at the last cut, the
// background Compactor's budget policy — and the db::Store facade wiring
// (Checkpoint-as-cut, Compact(), DumpSnapshot rerouting, the
// smartstore.ckpt.* properties, adaptive group commit, and the
// cadence-counter coalescing regression).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/smartstore.h"
#include "persist/compactor.h"
#include "persist/delta_checkpoint.h"
#include "persist/recovery.h"
#include "persist/segment.h"
#include "persist/wal_shard.h"
#include "smartstore/smartstore.h"
#include "util/thread_pool.h"

namespace {

using namespace smartstore;
using namespace smartstore::persist;

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("smartstore_test_delta_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = "file_" + std::to_string(id) + ".dat";
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
    f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 1000);
  return f;
}

std::set<std::string> store_names(const core::SmartStore& s) {
  std::set<std::string> names;
  for (const auto& unit : s.units())
    for (const auto& f : unit.files()) names.insert(f.name);
  return names;
}

// ---- persist layer: DeltaEngine ---------------------------------------------

/// A SmartStore + ShardedWal + DeltaEngine triple over a temp directory,
/// with the WAL-hooked insert idiom the crash suite uses.
struct EngineRig {
  explicit EngineRig(const std::filesystem::path& dir_in)
      : dir(dir_in.string()), wal(dir, cfg().num_units, /*group_commit=*/2) {
    store.build({});
  }
  static core::Config cfg() {
    core::Config c;
    c.num_units = 4;
    c.seed = 3;
    return c;
  }

  void insert(std::uint64_t id) {
    const auto f = make_file(id);
    store.insert_file(f, 0.0, [&](core::UnitId target) {
      return wal.log_insert(target, f);
    });
    inserted.insert(f.name);
  }

  std::string dir;
  core::SmartStore store{cfg()};
  ShardedWal wal;
  std::set<std::string> inserted;
};

TEST(DeltaCkpt, FirstCutEscalatesToFoldThenChainsAndRecovers) {
  const auto dir = temp_dir("roundtrip");
  std::set<std::string> expect;
  {
    EngineRig rig(dir);
    DeltaEngine engine(rig.store, rig.wal, rig.dir);

    for (std::uint64_t i = 0; i < 8; ++i) rig.insert(i);
    // No base to chain from yet: the first cut must escalate to a fold.
    const DeltaCutStats first = engine.cut();
    EXPECT_TRUE(first.folded);
    EXPECT_EQ(engine.folds(), 1u);
    EXPECT_EQ(engine.chain_len(), 0u);

    for (std::uint64_t i = 8; i < 14; ++i) rig.insert(i);
    const DeltaCutStats second = engine.cut();
    EXPECT_FALSE(second.folded);
    EXPECT_FALSE(second.noop);
    EXPECT_EQ(second.delta_records, 6u);
    EXPECT_GT(second.delta_bytes, 0u);
    EXPECT_EQ(engine.chain_len(), 1u);
    EXPECT_EQ(engine.chain_bytes(), second.chain_bytes);

    for (std::uint64_t i = 14; i < 17; ++i) rig.insert(i);
    const DeltaCutStats third = engine.cut();
    EXPECT_EQ(third.chain_len, 2u);
    expect = rig.inserted;
  }
  // Recovery: base + two chained deltas, no WAL tail left to replay.
  RecoveryResult rec = recover(dir.string());
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.used_manifest);
  EXPECT_EQ(rec.delta_cuts, 2u);
  EXPECT_EQ(rec.wal_records, 0u);
  EXPECT_TRUE(rec.store->check_invariants());
  EXPECT_EQ(store_names(*rec.store), expect);
  std::filesystem::remove_all(dir);
}

TEST(DeltaCkpt, ColdCutIsNoop) {
  const auto dir = temp_dir("cold");
  EngineRig rig(dir);
  DeltaEngine engine(rig.store, rig.wal, rig.dir);
  for (std::uint64_t i = 0; i < 5; ++i) rig.insert(i);
  engine.cut();
  const std::uint64_t chain_before = engine.chain_len();
  const std::uint64_t bytes_before = engine.total_delta_bytes();

  // Nothing mutated since: a cold store's cut must write nothing at all.
  const DeltaCutStats cold = engine.cut();
  EXPECT_TRUE(cold.noop);
  EXPECT_EQ(cold.delta_records, 0u);
  EXPECT_EQ(engine.chain_len(), chain_before);
  EXPECT_EQ(engine.total_delta_bytes(), bytes_before);
  std::filesystem::remove_all(dir);
}

TEST(DeltaCkpt, FoldCollapsesChainAndPrunesSupersededFiles) {
  const auto dir = temp_dir("fold");
  std::set<std::string> expect;
  {
    EngineRig rig(dir);
    DeltaEngine engine(rig.store, rig.wal, rig.dir);
    for (std::uint64_t i = 0; i < 6; ++i) rig.insert(i);
    engine.cut();  // fold #1 (no base yet)
    for (std::uint64_t i = 6; i < 10; ++i) rig.insert(i);
    engine.cut();
    for (std::uint64_t i = 10; i < 12; ++i) rig.insert(i);
    engine.cut();
    ASSERT_EQ(engine.chain_len(), 2u);

    const DeltaCutStats fold = engine.fold();
    EXPECT_TRUE(fold.folded);
    EXPECT_EQ(fold.chain_len, 0u);
    EXPECT_EQ(engine.chain_len(), 0u);
    EXPECT_EQ(engine.chain_bytes(), 0u);
    EXPECT_GT(fold.base_bytes, 0u);
    expect = rig.inserted;
  }
  // The superseded base image must be gone: exactly one base-<id>.bin
  // survives the fold's prune.
  std::size_t bases = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(dir / "ckpt")) {
    const std::string name = e.path().filename().string();
    if (name.rfind("base-", 0) == 0) ++bases;
  }
  EXPECT_EQ(bases, 1u);

  RecoveryResult rec = recover(dir.string());
  ASSERT_TRUE(rec.store);
  EXPECT_TRUE(rec.used_manifest);
  EXPECT_EQ(rec.delta_cuts, 0u);
  EXPECT_EQ(store_names(*rec.store), expect);
  std::filesystem::remove_all(dir);
}

TEST(DeltaCkpt, ReconstructAtLastCutIgnoresRecordsAfterTheCut) {
  const auto dir = temp_dir("reconstruct");
  EngineRig rig(dir);
  DeltaEngine engine(rig.store, rig.wal, rig.dir);
  for (std::uint64_t i = 0; i < 7; ++i) rig.insert(i);
  engine.cut();
  const std::set<std::string> at_cut = rig.inserted;

  // Records after the cut live only in the WAL; the offline
  // reconstruction reads base + chain and must not see them.
  for (std::uint64_t i = 7; i < 11; ++i) rig.insert(i);
  rig.wal.commit_all();

  std::uint64_t seq = 0;
  auto rebuilt = engine.reconstruct_at_last_cut(&seq);
  ASSERT_TRUE(rebuilt);
  EXPECT_EQ(seq, engine.last_cut_seq());
  EXPECT_TRUE(rebuilt->check_invariants());
  EXPECT_EQ(store_names(*rebuilt), at_cut);
  std::filesystem::remove_all(dir);
}

TEST(DeltaCkpt, CompactorFoldsWhenChainExceedsBudget) {
  const auto dir = temp_dir("compactor");
  EngineRig rig(dir);
  DeltaEngine engine(rig.store, rig.wal, rig.dir);
  util::ThreadPool pool(2);
  Compactor compactor(engine, pool, /*max_chain_len=*/2,
                      /*max_chain_bytes=*/0);

  std::uint64_t next = 0;
  auto churn_and_cut = [&] {
    for (int i = 0; i < 3; ++i) rig.insert(next++);
    engine.cut();
  };
  churn_and_cut();  // fold #1 (no base yet), chain 0
  churn_and_cut();  // chain 1
  EXPECT_FALSE(compactor.maybe_schedule());  // under budget
  churn_and_cut();  // chain 2 — still not PAST the budget (strict >)
  EXPECT_FALSE(compactor.maybe_schedule());
  churn_and_cut();  // chain 3 — over budget now
  EXPECT_TRUE(compactor.maybe_schedule());
  EXPECT_TRUE(compactor.wait());
  EXPECT_EQ(engine.chain_len(), 0u);
  EXPECT_GE(engine.folds(), 2u);
  EXPECT_EQ(compactor.scheduled(), 1u);

  RecoveryResult rec = recover(dir.string());
  ASSERT_TRUE(rec.store);
  EXPECT_EQ(store_names(*rec.store), rig.inserted);
  std::filesystem::remove_all(dir);
}

// ---- db facade --------------------------------------------------------------

db::Options small_options() {
  db::Options o;
  o.num_units = 6;
  o.seed = 11;
  return o;
}

std::unique_ptr<db::Store> open_or_die(const db::Options& o,
                                       const std::string& path) {
  auto opened = db::Store::Open(o, path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

TEST(DeltaDb, CheckpointCadenceCutsDeltasAndReopens) {
  const auto dir = temp_dir("db_roundtrip");
  {
    auto store = open_or_die(small_options(), dir.string());
    for (std::uint64_t i = 0; i < 30; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());  // fold (fresh store)
    for (std::uint64_t i = 30; i < 40; ++i)
      ASSERT_TRUE(store->Put(make_file(i)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());  // delta cut

    const db::CheckpointInfo info = store->GetCheckpointInfo();
    EXPECT_TRUE(info.last_was_delta);
    EXPECT_GE(info.delta_cuts, 1u);
    EXPECT_EQ(info.last_delta_records, 10u);
    EXPECT_GE(info.delta_chain_len, 1u);
    EXPECT_GT(info.delta_chain_bytes, 0u);

    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-enabled", &v));
    EXPECT_EQ(v, "1");
    ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-chain-len", &v));
    EXPECT_EQ(v, std::to_string(info.delta_chain_len));
    ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-total-bytes", &v));
    EXPECT_NE(v, "0");
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    EXPECT_TRUE(store->recovery_info().recovered);
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(v, "40");
    ASSERT_TRUE(store->Close().ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(DeltaDb, CompactFoldsTheChainAndSurvivesReopen) {
  const auto dir = temp_dir("db_compact");
  {
    auto store = open_or_die(small_options(), dir.string());
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(store->Put(make_file(round * 10 + i)).ok());
      ASSERT_TRUE(store->Checkpoint().ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    const db::CheckpointInfo info = store->GetCheckpointInfo();
    EXPECT_GE(info.delta_folds, 1u);
    EXPECT_EQ(info.delta_chain_len, 0u);
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-folds", &v));
    EXPECT_NE(v, "0");
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = open_or_die(small_options(), dir.string());
    std::string v;
    ASSERT_TRUE(store->GetProperty("smartstore.total-files", &v));
    EXPECT_EQ(v, "30");
    ASSERT_TRUE(store->Close().ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(DeltaDb, FullCheckpointModeReportsDeltaDisabled) {
  const auto dir = temp_dir("db_full_mode");
  db::Options o = small_options();
  o.incremental_checkpoints = false;
  auto store = open_or_die(o, dir.string());
  ASSERT_TRUE(store->Put(make_file(1)).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  std::string v;
  ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-enabled", &v));
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-cuts", &v));
  EXPECT_EQ(v, "0");
  // Compact() must degrade to a plain full checkpoint, not fail.
  EXPECT_TRUE(store->Compact().ok());
  ASSERT_TRUE(store->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(DeltaDb, DumpSnapshotThroughDeltaCutMatchesContents) {
  const auto dir = temp_dir("db_dump");
  auto store = open_or_die(small_options(), dir.string());
  std::set<std::string> expect;
  for (std::uint64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(store->Put(make_file(i)).ok());
    expect.insert(make_file(i).name);
  }
  std::uint64_t seq = 0;
  auto dump = store->DumpSnapshot(&seq);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_GT(seq, 0u);
  std::set<std::string> got;
  for (const auto& f : *dump) got.insert(f.name);
  EXPECT_EQ(got, expect);
  // The reroute cut a delta to reconstruct from: the engine's counters
  // must show it.
  std::string v;
  ASSERT_TRUE(store->GetProperty("smartstore.ckpt.delta-last-cut-seq", &v));
  EXPECT_EQ(v, std::to_string(seq));
  ASSERT_TRUE(store->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(DeltaDb, AdaptiveGroupCommitReportsEffectiveSize) {
  const auto dir = temp_dir("db_adaptive");
  db::Options o = small_options();
  o.group_commit = 0;  // adaptive
  auto store = open_or_die(o, dir.string());
  for (std::uint64_t i = 0; i < 200; ++i)
    ASSERT_TRUE(store->Put(make_file(i)).ok());
  std::string v;
  ASSERT_TRUE(
      store->GetProperty("smartstore.wal.group-commit.effective", &v));
  const std::uint64_t effective = std::stoull(v);
  EXPECT_GE(effective, 1u);
  EXPECT_LE(effective, persist::ShardedWal::kMaxAdaptiveGroupCommit);
  ASSERT_TRUE(store->Close().ok());

  // Everything acked must survive reopen regardless of batch sizing.
  auto reopened = open_or_die(o, dir.string());
  ASSERT_TRUE(reopened->GetProperty("smartstore.total-files", &v));
  EXPECT_EQ(v, "200");
  ASSERT_TRUE(reopened->Close().ok());
  std::filesystem::remove_all(dir);
}

// Regression for the cadence-counter thundering herd: note_mutations used
// to reset the counter only when trigger() accepted the request, so while
// a checkpoint was in flight EVERY subsequent mutation re-took the
// coalescing lock and re-poked the checkpointer. Post-fix the counter
// resets unconditionally once a trigger attempt is made — single-threaded
// with checkpoint_every=1 the pending counter must therefore read 0 after
// every Put (the uncontended try_lock always succeeds).
TEST(DeltaDb, CadenceCounterResetsEvenWhenCheckpointInFlight) {
  const auto dir = temp_dir("db_cadence");
  db::Options o = small_options();
  o.checkpoint_every = 1;
  auto store = open_or_die(o, dir.string());
  for (std::uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store->Put(make_file(i)).ok());
    std::string v;
    ASSERT_TRUE(
        store->GetProperty("smartstore.checkpoints.cadence-pending", &v));
    EXPECT_EQ(v, "0") << "mutation " << i
                      << " left the cadence counter armed";
  }
  ASSERT_TRUE(store->Close().ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
